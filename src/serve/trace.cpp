#include "serve/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <tuple>

#include "util/error.hpp"

namespace imars::serve {

namespace {

constexpr int kRuntimePid = 1;
constexpr int kHostPid = 99;
int shard_pid(std::size_t shard) { return 10 + static_cast<int>(shard); }

/// Stage-unit thread id inside a shard's process track. tid 0 is the ET
/// bank; stage units follow, slot-major. 64 stages per slot is far above
/// any real spec (the largest graph in the repo has 4).
int stage_tid(std::size_t slot, std::size_t stage) {
  return 1 + static_cast<int>(slot) * 64 + static_cast<int>(stage);
}

}  // namespace

char phase_char(TraceEvent::Phase p) {
  switch (p) {
    case TraceEvent::Phase::kComplete: return 'X';
    case TraceEvent::Phase::kAsyncBegin: return 'b';
    case TraceEvent::Phase::kAsyncEnd: return 'e';
    case TraceEvent::Phase::kCounter: return 'C';
    case TraceEvent::Phase::kInstant: return 'i';
    case TraceEvent::Phase::kMeta: return 'M';
  }
  return '?';
}

void TraceLog::name_process(int pid, std::string_view name) {
  process_names_.emplace(pid, std::string(name));
}

void TraceLog::name_thread(int pid, int tid, std::string_view name) {
  thread_names_.emplace(std::make_pair(pid, tid), std::string(name));
}

void TraceLog::on_stage(const StageSpan& s) {
  const std::string stage_name =
      s.name.empty() ? "stage" + std::to_string(s.stage) : std::string(s.name);
  name_process(shard_pid(s.shard), "shard " + std::to_string(s.shard));
  name_thread(shard_pid(s.shard), stage_tid(s.slot, s.stage),
              "s" + std::to_string(s.slot) + "/" + stage_name);

  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kComplete;
  ev.name = stage_name;
  ev.cat = "unit";
  ev.ts_us = s.start.us();
  ev.dur_us = (s.end - s.start).us();
  ev.pid = shard_pid(s.shard);
  ev.tid = stage_tid(s.slot, s.stage);
  ev.num_args = {{"query", static_cast<double>(s.query)},
                 {"batch", static_cast<double>(s.batch)},
                 {"unit_wait_us", s.unit_wait.us()},
                 {"et_wait_us", s.et_wait.us()}};
  events_.push_back(std::move(ev));

  // The stage's claim on the shard's shared ET banks, on the ET track —
  // the contention the graph's ET-free towers are exempt from.
  if (s.et_busy.value > 0.0) {
    name_thread(shard_pid(s.shard), 0, "et-banks");
    TraceEvent et;
    et.phase = TraceEvent::Phase::kComplete;
    et.name = stage_name + ".et";
    et.cat = "unit";
    et.ts_us = s.start.us();
    et.dur_us = s.et_busy.us();
    et.pid = shard_pid(s.shard);
    et.tid = 0;
    et.num_args = {{"query", static_cast<double>(s.query)}};
    events_.push_back(std::move(et));
  }

  registry_.add_counter("spans.stage");
  registry_.histogram("stage.unit_wait_ns").record(s.unit_wait.value);
  registry_.histogram("stage.et_wait_ns").record(s.et_wait.value);
  registry_.histogram("stage.busy_ns").record((s.end - s.start).value);
}

void TraceLog::on_stage_merge(std::size_t slot, std::size_t stage,
                              std::string_view name, std::size_t query,
                              std::size_t batch, device::Ns start,
                              device::Ns end) {
  const std::string merge_name =
      (name.empty() ? "stage" + std::to_string(stage) : std::string(name)) +
      ".merge";
  name_process(kRuntimePid, "serve-runtime");
  const int tid = 60 + static_cast<int>(slot);
  name_thread(kRuntimePid, tid, "merge s" + std::to_string(slot));
  // Produced-item merges belong to individual QUERIES, and different
  // queries' merge windows of one batch interleave arbitrarily in
  // simulated time — async spans (paired by query id), like the batch
  // lifecycle, not complete spans on one track (which must nest).
  TraceEvent begin;
  begin.phase = TraceEvent::Phase::kAsyncBegin;
  begin.name = merge_name;
  begin.cat = "stage.merge";
  begin.ts_us = start.us();
  begin.pid = kRuntimePid;
  begin.tid = tid;
  begin.id = query;
  begin.num_args = {{"batch", static_cast<double>(batch)},
                    {"stage", static_cast<double>(stage)}};
  TraceEvent fin = begin;
  fin.phase = TraceEvent::Phase::kAsyncEnd;
  fin.ts_us = end.us();
  fin.num_args.clear();
  events_.push_back(std::move(begin));
  events_.push_back(std::move(fin));
  registry_.add_counter("spans.stage_merge");
  registry_.histogram("stage.merge_ns").record((end - start).value);
}

void TraceLog::on_batch(const BatchSpan& b) {
  ++batches_;
  const std::string cls =
      b.class_name.empty() ? "class " + std::to_string(b.qos_class)
                           : std::string(b.class_name);
  name_process(kRuntimePid, "serve-runtime");
  name_thread(kRuntimePid, static_cast<int>(b.qos_class), cls);

  // Batch lifecycles are async spans: consecutive batches of one class
  // overlap arbitrarily (batch N+1's oldest request can predate batch N's
  // close), which complete events on one track cannot represent.
  const auto pair = [&](const char* cat, device::Ns from, device::Ns to,
                        bool with_args) {
    TraceEvent begin;
    begin.phase = TraceEvent::Phase::kAsyncBegin;
    begin.name = cls;
    begin.cat = cat;
    begin.ts_us = from.us();
    begin.pid = kRuntimePid;
    begin.tid = static_cast<int>(b.qos_class);
    begin.id = b.id;
    if (with_args) {
      begin.str_args = {{"trigger", std::string(to_string(b.trigger))}};
      begin.num_args = {{"size", static_cast<double>(b.size)},
                        {"servable", static_cast<double>(b.servable)}};
    }
    TraceEvent end = begin;
    end.phase = TraceEvent::Phase::kAsyncEnd;
    end.ts_us = to.us();
    end.str_args.clear();
    end.num_args.clear();
    events_.push_back(std::move(begin));
    events_.push_back(std::move(end));
  };
  pair("batch.queue", b.first_enqueue, b.close, /*with_args=*/true);
  pair("batch.gate", b.close, b.release, /*with_args=*/false);
  pair("batch.exec", b.release, b.complete, /*with_args=*/false);

  registry_.add_counter("batches.total");
  registry_.add_counter("batches.trigger." +
                        std::string(to_string(b.trigger)));
  registry_.histogram("batch.queue_wait_ns")
      .record((b.close - b.first_enqueue).value);
  registry_.histogram("batch.gate_wait_ns").record((b.release - b.close).value);
  registry_.histogram("batch.exec_ns").record((b.complete - b.release).value);
}

void TraceLog::on_write(std::size_t shard, device::Ns start, device::Ns end) {
  name_process(shard_pid(shard), "shard " + std::to_string(shard));
  name_thread(shard_pid(shard), 0, "et-banks");
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kComplete;
  ev.name = "write-back";
  ev.cat = "unit";
  ev.ts_us = start.us();
  ev.dur_us = (end - start).us();
  ev.pid = shard_pid(shard);
  ev.tid = 0;
  events_.push_back(std::move(ev));
  registry_.add_counter("spans.write");
  registry_.histogram("write.busy_ns").record((end - start).value);
}

namespace {

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kWarm: return "warm";
    case Tier::kCold: return "cold";
    case Tier::kArray: break;
  }
  return "array";
}

}  // namespace

void TraceLog::on_cache_flush(std::size_t shard, device::Ns at,
                              std::uint64_t rows, std::uint64_t rows_warm,
                              std::uint64_t rows_cold) {
  name_process(shard_pid(shard), "shard " + std::to_string(shard));
  name_thread(shard_pid(shard), 0, "et-banks");
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.name = "flush";
  ev.cat = "cache";
  ev.ts_us = at.us();
  ev.pid = shard_pid(shard);
  ev.tid = 0;
  ev.num_args = {{"rows", static_cast<double>(rows)}};
  if (rows_warm + rows_cold > 0) {
    // Destination-tier split (tiered runs only, so flat-store traces are
    // byte-identical to the pre-tier format).
    ev.num_args.emplace_back("rows_warm", static_cast<double>(rows_warm));
    ev.num_args.emplace_back("rows_cold", static_cast<double>(rows_cold));
  }
  events_.push_back(std::move(ev));
  registry_.add_counter("cache.flush_events");
  registry_.add_counter("cache.flush_rows", rows);
  if (rows_warm > 0) registry_.add_counter("cache.flush_rows.warm", rows_warm);
  if (rows_cold > 0) registry_.add_counter("cache.flush_rows.cold", rows_cold);
}

void TraceLog::on_cache_evict(std::uint32_t table, std::uint32_t row,
                              bool dirty, Tier dest) {
  (void)table, (void)row;
  registry_.add_counter("cache.evictions");
  if (dirty) registry_.add_counter("cache.evictions.dirty");
  if (dest != Tier::kArray)
    registry_.add_counter(std::string("cache.evictions.to_") +
                          tier_name(dest));
}

void TraceLog::on_cache_migrate(device::Ns at, std::uint64_t to_warm,
                                std::uint64_t to_cold) {
  name_process(kRuntimePid, "serve-runtime");
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.name = "migrate";
  ev.cat = "cache";
  ev.ts_us = at.us();
  ev.pid = kRuntimePid;
  ev.tid = 0;
  ev.num_args = {{"to_warm", static_cast<double>(to_warm)},
                 {"to_cold", static_cast<double>(to_cold)}};
  events_.push_back(std::move(ev));
  registry_.add_counter("cache.migrate_commits");
  registry_.add_counter("cache.migrate.to_warm", to_warm);
  registry_.add_counter("cache.migrate.to_cold", to_cold);
}

void TraceLog::on_cache_update(bool absorbed) {
  registry_.add_counter(absorbed ? "cache.update.absorbed"
                                 : "cache.update.writethrough");
}

void TraceLog::on_counter(std::string_view name, device::Ns at, double value) {
  name_process(kRuntimePid, "serve-runtime");
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kCounter;
  ev.name = std::string(name);
  ev.ts_us = at.us();
  ev.pid = kRuntimePid;
  ev.tid = 0;
  ev.num_args = {{"value", value}};
  events_.push_back(std::move(ev));
  registry_.set_gauge(name, value);
}

void TraceLog::on_host_span(std::string_view name, double start_us,
                            double dur_us) {
  name_process(kHostPid, "host-profile");
  name_thread(kHostPid, 0, "event-loop");
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kComplete;
  ev.name = std::string(name);
  ev.cat = "host";
  ev.ts_us = start_us;
  ev.dur_us = dur_us;
  ev.pid = kHostPid;
  ev.tid = 0;
  events_.push_back(std::move(ev));
}

void TraceLog::finalize() {
  if (finalized_) return;
  finalized_ = true;

  // Place the summary at the end of *simulated* time only: host-profile
  // spans carry wall-clock timestamps, and letting them push the summary
  // around would make the one simulated-time artifact nondeterministic.
  double last_ts = 0.0;
  for (const auto& e : events_)
    if (e.pid != kHostPid) last_ts = std::max(last_ts, e.ts_us + e.dur_us);

  for (const auto& [pid, pname] : process_names_) {
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::kMeta;
    ev.name = "process_name";
    ev.pid = pid;
    ev.str_args = {{"name", pname}};
    events_.push_back(std::move(ev));
  }
  for (const auto& [key, tname] : thread_names_) {
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::kMeta;
    ev.name = "thread_name";
    ev.pid = key.first;
    ev.tid = key.second;
    ev.str_args = {{"name", tname}};
    events_.push_back(std::move(ev));
  }

  // The summary instant carries the whole registry, so the aggregate view
  // ships inside the same artifact as the timeline (and check_trace can
  // audit the span counts against it).
  TraceEvent summary;
  summary.phase = TraceEvent::Phase::kInstant;
  summary.name = "serve.summary";
  summary.cat = "summary";
  summary.ts_us = last_ts;
  summary.pid = kRuntimePid;
  summary.tid = 0;
  summary.num_args.emplace_back("batches", static_cast<double>(batches_));
  for (const auto& [name, v] : registry_.counters())
    summary.num_args.emplace_back(name, static_cast<double>(v));
  for (const auto& [name, v] : registry_.gauges())
    summary.num_args.emplace_back(name, v);
  for (const auto& [name, h] : registry_.histograms()) {
    summary.num_args.emplace_back(name + ".count",
                                  static_cast<double>(h.count()));
    summary.num_args.emplace_back(name + ".p50", h.percentile(50.0));
    summary.num_args.emplace_back(name + ".p95", h.percentile(95.0));
    summary.num_args.emplace_back(name + ".p99", h.percentile(99.0));
  }
  events_.push_back(std::move(summary));
}

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out += buf;
}

}  // namespace

void TraceLog::write(const std::string& path) {
  finalize();
  std::string out;
  out.reserve(events_.size() * 128 + 64);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":";
    append_json_string(out, e.name);
    out += ",\"ph\":\"";
    out.push_back(phase_char(e.phase));
    out += "\"";
    if (!e.cat.empty()) {
      out += ",\"cat\":";
      append_json_string(out, e.cat);
    }
    if (e.phase != TraceEvent::Phase::kMeta) {
      out += ",\"ts\":";
      append_json_number(out, e.ts_us);
    }
    if (e.phase == TraceEvent::Phase::kComplete) {
      out += ",\"dur\":";
      append_json_number(out, e.dur_us);
    }
    out += ",\"pid\":" + std::to_string(e.pid);
    out += ",\"tid\":" + std::to_string(e.tid);
    if (e.phase == TraceEvent::Phase::kAsyncBegin ||
        e.phase == TraceEvent::Phase::kAsyncEnd)
      out += ",\"id\":" + std::to_string(e.id);
    if (e.phase == TraceEvent::Phase::kInstant) out += ",\"s\":\"t\"";
    if (!e.str_args.empty() || !e.num_args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : e.str_args) {
        if (!first_arg) out += ",";
        first_arg = false;
        append_json_string(out, k);
        out += ":";
        append_json_string(out, v);
      }
      for (const auto& [k, v] : e.num_args) {
        if (!first_arg) out += ",";
        first_arg = false;
        append_json_string(out, k);
        out += ":";
        append_json_number(out, v);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";

  std::ofstream f(path, std::ios::binary);
  IMARS_REQUIRE(f.good(), "TraceLog::write: cannot open '" + path + "'");
  f << out;
  IMARS_REQUIRE(f.good(), "TraceLog::write: write failed for '" + path + "'");
}

// --- validation -------------------------------------------------------------

TraceCheck check_trace(std::span<const TraceEvent> events) {
  TraceCheck out;
  out.events = events.size();
  const auto fail = [&](std::string msg) {
    out.ok = false;
    if (out.problems.size() < 32) out.problems.push_back(std::move(msg));
  };
  constexpr double eps = 1e-6;  // us; span endpoints share exact doubles

  std::map<std::pair<int, int>, std::vector<const TraceEvent*>> tracks;
  // (pid, cat, id) -> stack of open async begin timestamps.
  std::map<std::tuple<int, std::string, std::uint64_t>, std::vector<double>>
      open_async;
  std::optional<double> summary_batches;
  std::optional<double> summary_merges;
  // Per (pid, batch id): the lifecycle phase boundaries, for the chaining
  // audit below (queue close <= gate open, gate release <= exec begin).
  struct BatchPhases {
    std::optional<double> queue_end, gate_begin, gate_end, exec_begin;
  };
  std::map<std::pair<int, std::uint64_t>, BatchPhases> batch_phases;

  for (const auto& e : events) {
    switch (e.phase) {
      case TraceEvent::Phase::kComplete:
        if (!std::isfinite(e.ts_us) || !std::isfinite(e.dur_us) ||
            e.dur_us < 0.0) {
          fail("span '" + e.name + "' has a non-finite or negative extent");
          break;
        }
        tracks[{e.pid, e.tid}].push_back(&e);
        break;
      case TraceEvent::Phase::kAsyncBegin: {
        open_async[{e.pid, e.cat, e.id}].push_back(e.ts_us);
        if (e.cat == "batch.queue") {
          ++out.batch_spans;
          std::string trigger;
          for (const auto& [k, v] : e.str_args)
            if (k == "trigger") trigger = v;
          if (trigger == "size" || trigger == "deadline" ||
              trigger == "preemptive" || trigger == "flush")
            ++out.trigger_counts[trigger];
          else
            fail("batch span id " + std::to_string(e.id) +
                 " has unknown close trigger '" + trigger + "'");
        } else if (e.cat == "batch.gate") {
          batch_phases[{e.pid, e.id}].gate_begin = e.ts_us;
        } else if (e.cat == "batch.exec") {
          batch_phases[{e.pid, e.id}].exec_begin = e.ts_us;
        } else if (e.cat == "stage.merge") {
          ++out.merge_spans;
        }
        break;
      }
      case TraceEvent::Phase::kAsyncEnd: {
        const auto it = open_async.find({e.pid, e.cat, e.id});
        if (it == open_async.end() || it->second.empty()) {
          fail("async end '" + e.cat + "' id " + std::to_string(e.id) +
               " without a matching begin");
          break;
        }
        if (e.ts_us + eps < it->second.back())
          fail("async span '" + e.cat + "' id " + std::to_string(e.id) +
               " ends before it begins");
        it->second.pop_back();
        if (e.cat == "batch.queue")
          batch_phases[{e.pid, e.id}].queue_end = e.ts_us;
        else if (e.cat == "batch.gate")
          batch_phases[{e.pid, e.id}].gate_end = e.ts_us;
        break;
      }
      case TraceEvent::Phase::kInstant:
        if (e.name == "serve.summary")
          for (const auto& [k, v] : e.num_args) {
            if (k == "batches") summary_batches = v;
            if (k == "spans.stage_merge") summary_merges = v;
          }
        break;
      default:
        break;
    }
  }

  // A batch's lifecycle phases must chain: the queue span closes when the
  // gate span opens (the batcher's close IS the gate's arrival) and the
  // gate releases no later than execution begins. Out-of-order phases mean
  // the runtime stamped a batch's timeline inconsistently — exactly the
  // kind of bookkeeping slip produced item sets could introduce (a
  // successor reading its feeder's items before the feeder's merge).
  for (const auto& [key, p] : batch_phases) {
    if (p.queue_end && p.gate_begin && *p.gate_begin + eps < *p.queue_end)
      fail("batch id " + std::to_string(key.second) +
           " opens its admission gate before its queue span closes");
    if (p.gate_end && p.exec_begin && *p.exec_begin + eps < *p.gate_end)
      fail("batch id " + std::to_string(key.second) +
           " begins execution before its admission gate releases");
  }

  for (const auto& [key, stack] : open_async)
    if (!stack.empty())
      fail("async span '" + std::get<1>(key) + "' id " +
           std::to_string(std::get<2>(key)) + " never ends");

  for (auto& [track, spans] : tracks) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                       return a->dur_us > b->dur_us;  // parent before child
                     });
    double unit_free = -std::numeric_limits<double>::infinity();
    std::vector<double> stack_ends;
    for (const TraceEvent* s : spans) {
      if (s->cat == "unit") {
        ++out.unit_spans;
        // One span at a time per stage unit / ET bank: the event model's
        // serialization promise.
        if (s->ts_us + eps < unit_free)
          fail("overlapping unit spans on pid " +
               std::to_string(track.first) + " tid " +
               std::to_string(track.second) + " near ts " +
               std::to_string(s->ts_us) + "us ('" + s->name + "')");
        unit_free = std::max(unit_free, s->ts_us + s->dur_us);
      }
      while (!stack_ends.empty() && stack_ends.back() <= s->ts_us + eps)
        stack_ends.pop_back();
      if (!stack_ends.empty() &&
          s->ts_us + s->dur_us > stack_ends.back() + eps)
        fail("span '" + s->name + "' on pid " + std::to_string(track.first) +
             " tid " + std::to_string(track.second) +
             " overlaps its enclosing span without nesting");
      stack_ends.push_back(s->ts_us + s->dur_us);
    }
  }

  std::size_t trigger_sum = 0;
  for (const auto& [trigger, n] : out.trigger_counts) trigger_sum += n;
  if (trigger_sum != out.batch_spans)
    fail("close-trigger counts (" + std::to_string(trigger_sum) +
         ") do not sum to the batch-span total (" +
         std::to_string(out.batch_spans) + ")");
  if (summary_batches &&
      static_cast<std::size_t>(*summary_batches) != out.batch_spans)
    fail("serve.summary reports " +
         std::to_string(static_cast<std::size_t>(*summary_batches)) +
         " batches but the trace holds " + std::to_string(out.batch_spans) +
         " batch spans");
  if (summary_merges &&
      static_cast<std::size_t>(*summary_merges) != out.merge_spans)
    fail("serve.summary reports " +
         std::to_string(static_cast<std::size_t>(*summary_merges)) +
         " produced-item merges but the trace holds " +
         std::to_string(out.merge_spans) + " merge spans");
  return out;
}

std::vector<SpanTotal> summarize_trace(std::span<const TraceEvent> events,
                                       std::size_t top_n) {
  std::map<std::pair<std::string, std::string>, SpanTotal> agg;
  for (const auto& e : events) {
    if (e.phase != TraceEvent::Phase::kComplete) continue;
    auto& t = agg[{e.cat, e.name}];
    t.cat = e.cat;
    t.name = e.name;
    ++t.count;
    t.total_us += e.dur_us;
    t.max_us = std::max(t.max_us, e.dur_us);
  }
  std::vector<SpanTotal> out;
  out.reserve(agg.size());
  for (auto& [key, t] : agg) out.push_back(std::move(t));
  std::sort(out.begin(), out.end(), [](const SpanTotal& a, const SpanTotal& b) {
    if (a.total_us != b.total_us) return a.total_us > b.total_us;
    return a.name < b.name;
  });
  if (top_n > 0 && out.size() > top_n) out.resize(top_n);
  return out;
}

}  // namespace imars::serve
