// Structured span tracing over simulated time, exported as Chrome
// trace-event JSON (chrome://tracing, Perfetto UI, speedscope).
//
// TraceLog is an ObserverSink that turns the runtime's observer events into
// a span timeline:
//
//   pid 1          "serve-runtime"  — per-batch async spans (queue wait,
//                                     admission-gate wait, execution; one
//                                     thread track per QoS class) and the
//                                     queue-depth / frontier counter series;
//   pid 10 + s     "shard s"        — tid 0 is the shard's shared ET-bank
//                                     track (ET claims and write-back
//                                     traffic), tid 1 + slot*64 + stage is
//                                     one stage unit's execution track;
//   pid 99         "host-profile"   — wall-clock self-profiling spans of
//                                     the simulator itself (HostProfiler).
//
// Simulated-time spans use the simulated nanosecond clock expressed in
// microseconds (the trace format's unit); host spans use wall microseconds
// since the profiler epoch. They never share a track, so mixing the two
// time domains in one file is safe and deliberate — one artifact answers
// both "where did the modeled time go" and "where did the simulator's
// time go".
//
// Stage-unit and ET-bank spans carry cat "unit": the event model promises
// a unit serves one span at a time, so check_trace() verifies per-track
// non-overlap — a failed check means the simulator's clock walk is broken,
// which is why CI validates every uploaded trace. Batch lifecycles are
// async spans (consecutive batches of one class overlap arbitrarily), and
// each close carries its CloseTrigger so trigger-reason counts can be
// audited against the total batch count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "serve/observe.hpp"

namespace imars::serve {

/// One trace event (the JSON object, pre-serialization).
struct TraceEvent {
  enum class Phase : std::uint8_t {
    kComplete,    ///< 'X': ts + dur
    kAsyncBegin,  ///< 'b': paired by (pid, cat, id)
    kAsyncEnd,    ///< 'e'
    kCounter,     ///< 'C'
    kInstant,     ///< 'i'
    kMeta,        ///< 'M': process/thread names
  };

  Phase phase = Phase::kComplete;
  std::string name;
  std::string cat;
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< complete events only
  int pid = 0;
  int tid = 0;
  std::uint64_t id = 0;  ///< async pairing key
  std::vector<std::pair<std::string, std::string>> str_args;
  std::vector<std::pair<std::string, double>> num_args;
};

char phase_char(TraceEvent::Phase p);

/// ObserverSink that records every event into an in-memory timeline and a
/// MetricsRegistry, then writes Chrome trace-event JSON. Attach with
/// ServingRuntime::set_observer (or to a pipeline directly), run, write().
class TraceLog final : public ObserverSink {
 public:
  void on_stage(const StageSpan& s) override;
  void on_stage_merge(std::size_t slot, std::size_t stage,
                      std::string_view name, std::size_t query,
                      std::size_t batch, device::Ns start,
                      device::Ns end) override;
  void on_batch(const BatchSpan& b) override;
  void on_write(std::size_t shard, device::Ns start, device::Ns end) override;
  void on_cache_flush(std::size_t shard, device::Ns at, std::uint64_t rows,
                      std::uint64_t rows_warm,
                      std::uint64_t rows_cold) override;
  void on_cache_evict(std::uint32_t table, std::uint32_t row, bool dirty,
                      Tier dest) override;
  void on_cache_migrate(device::Ns at, std::uint64_t to_warm,
                        std::uint64_t to_cold) override;
  void on_cache_update(bool absorbed) override;
  void on_counter(std::string_view name, device::Ns at, double value) override;
  void on_host_span(std::string_view name, double start_us,
                    double dur_us) override;

  /// Appends the track-name metadata and the "serve.summary" instant
  /// (total batches + every registry counter/gauge). Idempotent; write()
  /// calls it.
  void finalize();

  /// Writes the whole timeline as Chrome trace-event JSON. Throws
  /// imars::Error when the file cannot be written.
  void write(const std::string& path);

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  const MetricsRegistry& registry() const noexcept { return registry_; }
  MetricsRegistry& registry() noexcept { return registry_; }
  std::size_t batches() const noexcept { return batches_; }

 private:
  void name_process(int pid, std::string_view name);
  void name_thread(int pid, int tid, std::string_view name);

  std::vector<TraceEvent> events_;
  MetricsRegistry registry_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, std::string> thread_names_;
  std::size_t batches_ = 0;
  bool finalized_ = false;
};

/// Well-formedness verdict of a trace (see check_trace).
struct TraceCheck {
  bool ok = true;
  std::vector<std::string> problems;
  std::size_t events = 0;
  std::size_t unit_spans = 0;   ///< cat "unit" complete spans
  std::size_t batch_spans = 0;  ///< "batch.queue" async begins
  /// "stage.merge" async begins (produced-item merges of emitting stages).
  std::size_t merge_spans = 0;
  /// Batch count per close-trigger reason (from the span args).
  std::map<std::string, std::size_t> trigger_counts;
};

/// Validates a span timeline: complete spans have finite, non-negative
/// extents and nest properly per (pid, tid) track; cat "unit" spans (stage
/// units, ET banks) additionally never overlap on one track — the event
/// model's one-span-at-a-time promise; async begins/ends pair up by
/// (pid, cat, id); a batch's lifecycle phases chain in order per batch id
/// (queue close <= gate open, gate release <= exec begin); every batch
/// span carries a known close trigger and the per-trigger counts sum to
/// the total batch count (cross-checked against the "serve.summary"
/// batches figure when present, as is the produced-item merge-span count
/// against the summary's "spans.stage_merge").
TraceCheck check_trace(std::span<const TraceEvent> events);

/// Aggregate view for the CLI: total/self time per (cat, name).
struct SpanTotal {
  std::string cat;
  std::string name;
  std::size_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

/// Complete-span totals grouped by (cat, name), longest total first.
/// `top_n` = 0 returns everything.
std::vector<SpanTotal> summarize_trace(std::span<const TraceEvent> events,
                                       std::size_t top_n = 0);

}  // namespace imars::serve
