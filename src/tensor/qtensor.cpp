#include "tensor/qtensor.hpp"

#include "util/error.hpp"

namespace imars::tensor {

QMatrix::QMatrix(std::size_t rows, std::size_t cols, util::QuantParams params)
    : rows_(rows), cols_(cols), params_(params), data_(rows * cols, 0) {}

QMatrix QMatrix::quantize(const Matrix& m) {
  return quantize(m, util::choose_symmetric(m.data()));
}

QMatrix QMatrix::quantize(const Matrix& m, util::QuantParams params) {
  QMatrix q(m.rows(), m.cols(), params);
  for (std::size_t i = 0; i < m.data().size(); ++i)
    q.data_[i] = params.quantize(m.data()[i]);
  return q;
}

std::int8_t& QMatrix::at(std::size_t r, std::size_t c) {
  IMARS_REQUIRE(r < rows_ && c < cols_, "QMatrix::at out of range");
  return data_[r * cols_ + c];
}

std::int8_t QMatrix::at(std::size_t r, std::size_t c) const {
  IMARS_REQUIRE(r < rows_ && c < cols_, "QMatrix::at out of range");
  return data_[r * cols_ + c];
}

std::span<std::int8_t> QMatrix::row(std::size_t r) {
  IMARS_REQUIRE(r < rows_, "QMatrix::row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const std::int8_t> QMatrix::row(std::size_t r) const {
  IMARS_REQUIRE(r < rows_, "QMatrix::row out of range");
  return {data_.data() + r * cols_, cols_};
}

Vector QMatrix::dequantize_row(std::size_t r) const {
  const auto src = row(r);
  Vector out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = params_.dequantize(src[c]);
  return out;
}

Matrix QMatrix::dequantize() const {
  Matrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto src = row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = params_.dequantize(src[c]);
  }
  return out;
}

std::vector<std::int32_t> gemv_i8(const QMatrix& m,
                                  std::span<const std::int8_t> v) {
  IMARS_REQUIRE(m.cols() == v.size(), "gemv_i8: dimension mismatch");
  std::vector<std::int32_t> out(m.rows(), 0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    std::int32_t acc = 0;
    for (std::size_t c = 0; c < row.size(); ++c)
      acc += static_cast<std::int32_t>(row[c]) * static_cast<std::int32_t>(v[c]);
    out[r] = acc;
  }
  return out;
}

}  // namespace imars::tensor
