// int8 quantized matrix with per-tensor symmetric scale.
//
// QMatrix is the on-"chip" representation of embedding tables and crossbar
// weights: each 32-d int8 embedding row occupies exactly one 256-bit CMA row
// (Sec III-A1), and crossbar tiles hold int8 weights.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/quant.hpp"

namespace imars::tensor {

/// Dense row-major int8 matrix + symmetric per-tensor scale.
class QMatrix {
 public:
  QMatrix() = default;

  /// rows x cols of zeros with the given scale.
  QMatrix(std::size_t rows, std::size_t cols, util::QuantParams params);

  /// Quantizes a float matrix with a scale chosen from its own range.
  static QMatrix quantize(const Matrix& m);

  /// Quantizes a float matrix with a caller-provided scale.
  static QMatrix quantize(const Matrix& m, util::QuantParams params);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  const util::QuantParams& params() const noexcept { return params_; }

  std::int8_t& at(std::size_t r, std::size_t c);
  std::int8_t at(std::size_t r, std::size_t c) const;

  std::span<std::int8_t> row(std::size_t r);
  std::span<const std::int8_t> row(std::size_t r) const;

  /// Dequantized copy of row r.
  Vector dequantize_row(std::size_t r) const;

  /// Full dequantized matrix.
  Matrix dequantize() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  util::QuantParams params_;
  std::vector<std::int8_t> data_;
};

/// Integer gemv: out_i = sum_j m[i][j] * v[j], 32-bit accumulation.
/// This is the arithmetic a crossbar tile performs.
std::vector<std::int32_t> gemv_i8(const QMatrix& m,
                                  std::span<const std::int8_t> v);

}  // namespace imars::tensor
