#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace imars::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  IMARS_REQUIRE(data_.size() == rows * cols, "Matrix: data size mismatch");
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, float stddev,
                     util::Xoshiro256& rng) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = stddev * static_cast<float>(rng.normal());
  return m;
}

float& Matrix::at(std::size_t r, std::size_t c) {
  IMARS_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
  return data_[r * cols_ + c];
}

float Matrix::at(std::size_t r, std::size_t c) const {
  IMARS_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
  return data_[r * cols_ + c];
}

std::span<float> Matrix::row(std::size_t r) {
  IMARS_REQUIRE(r < rows_, "Matrix::row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const float> Matrix::row(std::size_t r) const {
  IMARS_REQUIRE(r < rows_, "Matrix::row out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  IMARS_REQUIRE(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix out(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous in both b and out.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a.at(i, k);
      if (aik == 0.0f) continue;
      const auto brow = b.row(k);
      const auto orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Vector gemv(const Matrix& m, std::span<const float> v) {
  IMARS_REQUIRE(m.cols() == v.size(), "gemv: dimension mismatch");
  Vector out(m.rows(), 0.0f);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    float acc = 0.0f;
    for (std::size_t c = 0; c < row.size(); ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

Vector gevm(std::span<const float> v, const Matrix& m) {
  IMARS_REQUIRE(m.rows() == v.size(), "gevm: dimension mismatch");
  Vector out(m.cols(), 0.0f);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float vr = v[r];
    if (vr == 0.0f) continue;
    const auto row = m.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) out[c] += vr * row[c];
  }
  return out;
}

Vector add(std::span<const float> a, std::span<const float> b) {
  IMARS_REQUIRE(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector sub(std::span<const float> a, std::span<const float> b) {
  IMARS_REQUIRE(a.size() == b.size(), "sub: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector hadamard(std::span<const float> a, std::span<const float> b) {
  IMARS_REQUIRE(a.size() == b.size(), "hadamard: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

void add_inplace(std::span<float> a, std::span<const float> b) {
  IMARS_REQUIRE(a.size() == b.size(), "add_inplace: size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void scale_inplace(std::span<float> a, float s) {
  for (auto& x : a) x *= s;
}

float dot(std::span<const float> a, std::span<const float> b) {
  IMARS_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

float norm(std::span<const float> a) { return std::sqrt(dot(a, a)); }

float cosine(std::span<const float> a, std::span<const float> b) {
  const float na = norm(a);
  const float nb = norm(b);
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return dot(a, b) / (na * nb);
}

Vector relu(std::span<const float> x) {
  Vector out(x.begin(), x.end());
  relu_inplace(out);
  return out;
}

void relu_inplace(std::span<float> x) {
  for (auto& v : x) v = std::max(v, 0.0f);
}

Vector sigmoid(std::span<const float> x) {
  Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = 1.0f / (1.0f + std::exp(-x[i]));
  return out;
}

Vector softmax(std::span<const float> x) {
  IMARS_REQUIRE(!x.empty(), "softmax of empty vector");
  const float mx = *std::max_element(x.begin(), x.end());
  Vector out(x.size());
  float sum = 0.0f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::exp(x[i] - mx);
    sum += out[i];
  }
  for (auto& v : out) v /= sum;
  return out;
}

Vector concat(std::span<const Vector> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Vector out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace imars::tensor
