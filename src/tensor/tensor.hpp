// Minimal dense linear algebra for the DNN stacks.
//
// The models in the paper (YouTubeDNN MLPs, DLRM bottom/top MLPs) only need
// row-major f32 matrices, gemm/gemv, elementwise ops and three activations.
// Keeping this self-contained avoids an external BLAS dependency and keeps
// results bit-reproducible across platforms.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace imars::tensor {

/// Dense row-major matrix of float.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols from row-major data (size must be rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

  /// Gaussian init with the given stddev (He/Xavier handled by caller).
  static Matrix randn(std::size_t rows, std::size_t cols, float stddev,
                      util::Xoshiro256& rng);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  /// Row r as a span of cols() floats.
  std::span<float> row(std::size_t r);
  std::span<const float> row(std::size_t r) const;

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  /// Returns the transpose.
  Matrix transposed() const;

  bool operator==(const Matrix& other) const noexcept = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

using Vector = std::vector<float>;

/// out = a (m x k) * b (k x n).
Matrix matmul(const Matrix& a, const Matrix& b);

/// out = m (r x c) * v (c)  — matrix-vector product.
Vector gemv(const Matrix& m, std::span<const float> v);

/// out = v (r) * m (r x c)  — vector-matrix product (row vector).
Vector gevm(std::span<const float> v, const Matrix& m);

/// Elementwise helpers (sizes must match).
Vector add(std::span<const float> a, std::span<const float> b);
Vector sub(std::span<const float> a, std::span<const float> b);
Vector hadamard(std::span<const float> a, std::span<const float> b);
void add_inplace(std::span<float> a, std::span<const float> b);
void scale_inplace(std::span<float> a, float s);

/// Dot product.
float dot(std::span<const float> a, std::span<const float> b);

/// L2 norm.
float norm(std::span<const float> a);

/// Cosine similarity; 0 when either vector is all-zero.
float cosine(std::span<const float> a, std::span<const float> b);

/// Activations (new-vector and in-place variants).
Vector relu(std::span<const float> x);
void relu_inplace(std::span<float> x);
Vector sigmoid(std::span<const float> x);
/// Numerically stable softmax.
Vector softmax(std::span<const float> x);

/// Concatenates vectors in order.
Vector concat(std::span<const Vector> parts);

}  // namespace imars::tensor
