#include "util/bitvec.hpp"

#include <bit>

#include "util/error.hpp"

namespace imars::util {

namespace {
constexpr std::size_t kWordBits = 64;
constexpr std::size_t word_count(std::size_t nbits) {
  return (nbits + kWordBits - 1) / kWordBits;
}
}  // namespace

BitVec::BitVec(std::size_t nbits) : words_(word_count(nbits), 0), nbits_(nbits) {}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    IMARS_REQUIRE(bits[i] == '0' || bits[i] == '1', "bit string must be 0/1");
    if (bits[i] == '1') v.set(i, true);
  }
  return v;
}

BitVec BitVec::from_words(std::span<const std::uint64_t> words,
                          std::size_t nbits) {
  IMARS_REQUIRE(words.size() >= word_count(nbits),
                "not enough words for requested bit count");
  BitVec v(nbits);
  for (std::size_t w = 0; w < v.words_.size(); ++w) v.words_[w] = words[w];
  v.clear_tail();
  return v;
}

void BitVec::check_index(std::size_t i) const {
  IMARS_REQUIRE(i < nbits_, "bit index " + std::to_string(i) +
                                " out of range (size " +
                                std::to_string(nbits_) + ")");
}

void BitVec::clear_tail() noexcept {
  const std::size_t tail = nbits_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (~0ULL >> (kWordBits - tail));
  }
}

bool BitVec::get(std::size_t i) const {
  check_index(i);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVec::set(std::size_t i, bool value) {
  check_index(i);
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (value)
    words_[i / kWordBits] |= mask;
  else
    words_[i / kWordBits] &= ~mask;
}

void BitVec::flip(std::size_t i) {
  check_index(i);
  words_[i / kWordBits] ^= 1ULL << (i % kWordBits);
}

void BitVec::fill(bool value) {
  for (auto& w : words_) w = value ? ~0ULL : 0ULL;
  clear_tail();
}

std::size_t BitVec::popcount() const noexcept {
  std::size_t total = 0;
  for (auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t BitVec::hamming(const BitVec& other) const {
  IMARS_REQUIRE(nbits_ == other.nbits_, "hamming: size mismatch");
  std::size_t total = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    total += static_cast<std::size_t>(std::popcount(words_[w] ^ other.words_[w]));
  }
  return total;
}

BitVec BitVec::operator^(const BitVec& other) const {
  IMARS_REQUIRE(nbits_ == other.nbits_, "xor: size mismatch");
  BitVec out(nbits_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    out.words_[w] = words_[w] ^ other.words_[w];
  return out;
}

BitVec BitVec::operator&(const BitVec& other) const {
  IMARS_REQUIRE(nbits_ == other.nbits_, "and: size mismatch");
  BitVec out(nbits_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    out.words_[w] = words_[w] & other.words_[w];
  return out;
}

BitVec BitVec::operator|(const BitVec& other) const {
  IMARS_REQUIRE(nbits_ == other.nbits_, "or: size mismatch");
  BitVec out(nbits_);
  for (std::size_t w = 0; w < words_.size(); ++w)
    out.words_[w] = words_[w] | other.words_[w];
  return out;
}

BitVec BitVec::operator~() const {
  BitVec out(nbits_);
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] = ~words_[w];
  out.clear_tail();
  return out;
}

void BitVec::copy_from(const BitVec& src, std::size_t src_begin,
                       std::size_t len, std::size_t dst_begin) {
  IMARS_REQUIRE(src_begin + len <= src.nbits_, "copy_from: source range");
  IMARS_REQUIRE(dst_begin + len <= nbits_, "copy_from: destination range");
  // Bit-by-bit copy: ranges are short (<= 512 bits) in all call sites.
  for (std::size_t i = 0; i < len; ++i) {
    set(dst_begin + i, src.get(src_begin + i));
  }
}

BitVec BitVec::slice(std::size_t begin, std::size_t len) const {
  IMARS_REQUIRE(begin + len <= nbits_, "slice: range out of bounds");
  BitVec out(len);
  out.copy_from(*this, begin, len, 0);
  return out;
}

std::uint8_t BitVec::byte_at(std::size_t begin) const {
  IMARS_REQUIRE(begin + 8 <= nbits_, "byte_at: range out of bounds");
  std::uint8_t value = 0;
  for (int b = 0; b < 8; ++b) {
    if (get(begin + static_cast<std::size_t>(b))) value |= (1u << b);
  }
  return value;
}

void BitVec::set_byte(std::size_t begin, std::uint8_t value) {
  IMARS_REQUIRE(begin + 8 <= nbits_, "set_byte: range out of bounds");
  for (int b = 0; b < 8; ++b) {
    set(begin + static_cast<std::size_t>(b), (value >> b) & 1u);
  }
}

std::string BitVec::to_string() const {
  std::string s(nbits_, '0');
  for (std::size_t i = 0; i < nbits_; ++i) {
    if (get(i)) s[i] = '1';
  }
  return s;
}

}  // namespace imars::util
