// Dynamic bit vector with fast popcount / Hamming distance.
//
// BitVec is the storage format for LSH signatures and for the bit-level
// contents of CMA rows (a 256-column CMA row is a 256-bit BitVec). The word
// layout is little-endian within a 64-bit word: bit i lives in word i/64 at
// position i%64.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace imars::util {

/// Fixed-size-after-construction vector of bits.
class BitVec {
 public:
  BitVec() = default;

  /// Creates a vector of `nbits` bits, all zero.
  explicit BitVec(std::size_t nbits);

  /// Parses a string of '0'/'1' characters (index 0 = leftmost character).
  static BitVec from_string(const std::string& bits);

  /// Builds a vector from the low `nbits` of `words` (word 0 = bits 0..63).
  static BitVec from_words(std::span<const std::uint64_t> words,
                           std::size_t nbits);

  std::size_t size() const noexcept { return nbits_; }
  bool empty() const noexcept { return nbits_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// Sets all bits to `value`.
  void fill(bool value);

  /// Number of set bits.
  std::size_t popcount() const noexcept;

  /// Hamming distance to another vector of the same size.
  std::size_t hamming(const BitVec& other) const;

  /// Bitwise operators (sizes must match).
  BitVec operator^(const BitVec& other) const;
  BitVec operator&(const BitVec& other) const;
  BitVec operator|(const BitVec& other) const;
  BitVec operator~() const;

  bool operator==(const BitVec& other) const noexcept = default;

  /// Copies bits [src_begin, src_begin+len) of `src` into this vector
  /// starting at dst_begin.
  void copy_from(const BitVec& src, std::size_t src_begin, std::size_t len,
                 std::size_t dst_begin);

  /// Returns bits [begin, begin+len) as a new vector.
  BitVec slice(std::size_t begin, std::size_t len) const;

  /// Interprets bits [begin, begin+8) as an unsigned byte (bit begin = LSB).
  std::uint8_t byte_at(std::size_t begin) const;

  /// Writes `value` into bits [begin, begin+8) (bit begin = LSB).
  void set_byte(std::size_t begin, std::uint8_t value);

  /// '0'/'1' string, index 0 first.
  std::string to_string() const;

  /// Raw word storage (low word first). Trailing bits beyond size() are zero.
  std::span<const std::uint64_t> words() const noexcept { return words_; }

 private:
  void check_index(std::size_t i) const;
  void clear_tail() noexcept;

  std::vector<std::uint64_t> words_;
  std::size_t nbits_ = 0;
};

}  // namespace imars::util
