// Checked-error helpers shared by all iMARS modules.
//
// The simulator is a library: precondition violations surface as exceptions
// (imars::Error) rather than asserts so that tests can exercise failure
// injection and callers can recover.
#pragma once

#include <stdexcept>
#include <string>

namespace imars {

/// Exception type thrown on any checked precondition violation inside the
/// iMARS library (bad dimensions, out-of-range lookups, over-capacity
/// mappings, illegal mode switches, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* expr, const char* file, int line,
                               const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) +
              ": requirement failed (" + expr + ")" +
              (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace imars

/// Checked precondition: throws imars::Error (never disabled, unlike assert).
#define IMARS_REQUIRE(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) ::imars::detail::raise(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
