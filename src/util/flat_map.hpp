// Open-addressing hash containers for the serving hot path.
//
// The hot-embedding cache performs two point lookups per ET row access
// (frequency history + resident set) and an erase/insert pair per LFU
// admission. With node-based std::unordered_map that is one malloc per
// new key and a free+malloc per admission — per-event heap traffic in the
// simulator's innermost loop. FlatMap64 is a linear-probing open table
// (u64 -> u64, splitmix64-finalized hash, backward-shift deletion, no
// tombstones) with identical observable semantics: point queries only, no
// iteration order is ever exposed, so swapping it in cannot change any
// simulated figure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace imars::util {

/// Linear-probing open-addressing map from 64-bit keys to 64-bit values.
/// Point operations only (find / insert / erase / clear); deliberately no
/// iteration, so behavior can never depend on hash order.
class FlatMap64 {
 public:
  FlatMap64() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() {
    state_.assign(state_.size(), 0);
    size_ = 0;
  }

  /// Structural-modification generation, for debug-mode invalidation
  /// checks: bumped by every rehash (any `operator[]`/`set` insert may
  /// trigger one) and by every successful erase (backward-shift deletion
  /// moves surviving entries) — exactly the operations that silently
  /// invalidate pointers previously returned by find()/operator[]. A
  /// caller holding a value pointer across a possibly-mutating call
  /// should snapshot generation() first and assert it is unchanged before
  /// dereferencing again (see hot_cache.cpp's access()/update()).
  std::uint64_t generation() const noexcept { return generation_; }

  /// Pointer to the value of `key`, or nullptr when absent.
  std::uint64_t* find(std::uint64_t key) noexcept {
    if (size_ == 0) return nullptr;
    std::size_t i = slot_of(key);
    while (state_[i] != 0) {
      if (keys_[i] == key) return &vals_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const std::uint64_t* find(std::uint64_t key) const noexcept {
    return const_cast<FlatMap64*>(this)->find(key);
  }
  bool contains(std::uint64_t key) const noexcept {
    return find(key) != nullptr;
  }

  /// The value slot of `key`, inserted as 0 when absent (the idiom behind
  /// `++freq[key]`).
  std::uint64_t& operator[](std::uint64_t key) {
    reserve_one();
    std::size_t i = slot_of(key);
    while (state_[i] != 0) {
      if (keys_[i] == key) return vals_[i];
      i = (i + 1) & mask_;
    }
    state_[i] = 1;
    keys_[i] = key;
    vals_[i] = 0;
    ++size_;
    return vals_[i];
  }

  /// Sets `key` to `value` (inserting or overwriting).
  void set(std::uint64_t key, std::uint64_t value) {
    (*this)[key] = value;
  }

  /// Removes `key`; returns false when absent. Backward-shift deletion
  /// keeps probe chains compact with no tombstones, so lookup cost stays
  /// bounded under the admission churn of a full cache.
  bool erase(std::uint64_t key) noexcept {
    if (size_ == 0) return false;
    std::size_t i = slot_of(key);
    while (true) {
      if (state_[i] == 0) return false;
      if (keys_[i] == key) break;
      i = (i + 1) & mask_;
    }
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (state_[j] == 0) break;
      // Shift j back into i only if i still lies on j's probe path.
      const std::size_t ideal = slot_of(keys_[j]);
      if (((j - ideal) & mask_) >= ((j - i) & mask_)) {
        keys_[i] = keys_[j];
        vals_[i] = vals_[j];
        i = j;
      }
    }
    state_[i] = 0;
    --size_;
    ++generation_;  // surviving entries may have shifted slots
    return true;
  }

 private:
  static std::uint64_t hash(std::uint64_t x) noexcept {
    // splitmix64 finalizer: full-avalanche over the packed (table, row) key.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  std::size_t slot_of(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(hash(key)) & mask_;
  }

  /// Guarantees room for one more entry at load factor <= 3/4.
  void reserve_one() {
    if (state_.empty()) {
      rehash(64);
    } else if ((size_ + 1) * 4 > state_.size() * 3) {
      rehash(state_.size() * 2);
    }
  }

  void rehash(std::size_t cap) {  // cap is a power of two
    ++generation_;  // every slot moves: all outstanding pointers die
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint64_t> old_vals = std::move(vals_);
    std::vector<std::uint8_t> old_state = std::move(state_);
    keys_.assign(cap, 0);
    vals_.assign(cap, 0);
    state_.assign(cap, 0);
    mask_ = cap - 1;
    for (std::size_t s = 0; s < old_state.size(); ++s) {
      if (old_state[s] == 0) continue;
      std::size_t i = slot_of(old_keys[s]);
      while (state_[i] != 0) i = (i + 1) & mask_;
      state_[i] = 1;
      keys_[i] = old_keys[s];
      vals_[i] = old_vals[s];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> vals_;
  std::vector<std::uint8_t> state_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  std::uint64_t generation_ = 0;
};

/// FlatMap64 with the value ignored: the resident-dirty set.
class FlatSet64 {
 public:
  std::size_t size() const noexcept { return map_.size(); }
  bool empty() const noexcept { return map_.empty(); }
  void clear() { map_.clear(); }
  bool contains(std::uint64_t key) const noexcept {
    return map_.contains(key);
  }
  void insert(std::uint64_t key) { map_[key] = 1; }
  bool erase(std::uint64_t key) noexcept { return map_.erase(key); }

 private:
  FlatMap64 map_;
};

}  // namespace imars::util
