#include "util/quant.hpp"

#include <algorithm>
#include <cmath>

namespace imars::util {

std::int8_t QuantParams::quantize(float x) const noexcept {
  const float q = std::nearbyint(x / scale);
  return sat_cast_i8(static_cast<std::int32_t>(
      std::clamp(q, -128.0f, 127.0f)));
}

QuantParams choose_symmetric(std::span<const float> values) {
  float max_abs = 0.0f;
  for (float v : values) max_abs = std::max(max_abs, std::fabs(v));
  QuantParams p;
  p.scale = (max_abs > 0.0f) ? max_abs / 127.0f : 1.0f;
  return p;
}

std::vector<std::int8_t> quantize(std::span<const float> values,
                                  const QuantParams& params) {
  std::vector<std::int8_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    out[i] = params.quantize(values[i]);
  return out;
}

std::vector<float> dequantize(std::span<const std::int8_t> values,
                              const QuantParams& params) {
  std::vector<float> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    out[i] = params.dequantize(values[i]);
  return out;
}

std::int8_t sat_add_i8(std::int8_t a, std::int8_t b) noexcept {
  return sat_cast_i8(static_cast<std::int32_t>(a) + static_cast<std::int32_t>(b));
}

std::int8_t sat_cast_i8(std::int32_t x) noexcept {
  return static_cast<std::int8_t>(std::clamp<std::int32_t>(x, -127, 127));
}

}  // namespace imars::util
