// int8 quantization utilities (Sec III-B: "We quantize all ETs to 8-bit
// integer precision").
//
// The paper stores 32-dimensional int8 embeddings as one 256-bit CMA row and
// runs all in-memory pooling in the integer domain. We use symmetric
// per-tensor quantization: q = clamp(round(x / scale), -127, 127).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace imars::util {

/// Symmetric per-tensor int8 quantization parameters.
struct QuantParams {
  float scale = 1.0f;  ///< real value represented by one integer step

  /// Quantizes one value to int8 with saturation.
  std::int8_t quantize(float x) const noexcept;

  /// Reconstructs the real value of one quantized step.
  float dequantize(std::int8_t q) const noexcept { return scale * static_cast<float>(q); }
};

/// Chooses the symmetric scale that maps max|x| to 127. A zero/empty input
/// yields scale 1 (any scale represents all-zero exactly).
QuantParams choose_symmetric(std::span<const float> values);

/// Quantizes a vector with the given parameters.
std::vector<std::int8_t> quantize(std::span<const float> values,
                                  const QuantParams& params);

/// Dequantizes a vector with the given parameters.
std::vector<float> dequantize(std::span<const std::int8_t> values,
                              const QuantParams& params);

/// Saturating int8 addition (the CMA in-memory adder saturates each 8-bit
/// lane; see cma::Cma::add_rows).
std::int8_t sat_add_i8(std::int8_t a, std::int8_t b) noexcept;

/// Saturating cast from a wide accumulator back to int8.
std::int8_t sat_cast_i8(std::int32_t x) noexcept;

}  // namespace imars::util
