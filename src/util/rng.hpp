// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the repository (data generators, LSH plane
// sampling, NN weight init, property tests) takes an explicit seed and uses
// these generators, so a given seed reproduces a run bit-for-bit on any
// platform.
#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>

namespace imars::util {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used directly for seeding and
/// for cheap hashing; also seeds Xoshiro256**.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit hash of (seed, index) — handy for content-addressed
/// pseudo-random values (e.g. per-row synthetic embeddings).
inline std::uint64_t hash64(std::uint64_t seed, std::uint64_t index) noexcept {
  SplitMix64 mix(seed ^ (index * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
  return mix.next();
}

/// Xoshiro256**: fast general-purpose PRNG with 256-bit state.
/// Satisfies the UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 mix(seed);
    for (auto& s : state_) s = mix.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // the n << 2^64 values used here.
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state trivially
  /// copyable and replayable).
  double normal() noexcept {
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace imars::util
