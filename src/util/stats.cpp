#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace imars::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double p) {
  IMARS_REQUIRE(!values.empty(), "percentile of empty span");
  IMARS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile_select(std::span<double> values, double p) {
  IMARS_REQUIRE(!values.empty(), "percentile of empty span");
  IMARS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  const auto nth = values.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(values.begin(), nth, values.end());
  const double v_lo = *nth;
  // hi is lo or lo + 1; after nth_element everything past `nth` is >= v_lo,
  // so the (lo+1)-th order statistic is the minimum of the tail — the same
  // value the sorted copy holds at index hi.
  const double v_hi = hi == lo
                          ? v_lo
                          : *std::min_element(nth + 1, values.end());
  return v_lo * (1.0 - frac) + v_hi * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  IMARS_REQUIRE(xs.size() == ys.size(), "pearson: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(n);
  const double my = std::accumulate(ys.begin(), ys.end(), 0.0) / static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> rank(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg;
    i = j + 1;
  }
  return rank;
}
}  // namespace

double spearman(std::span<const double> xs, std::span<const double> ys) {
  IMARS_REQUIRE(xs.size() == ys.size(), "spearman: size mismatch");
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

double auc(std::span<const int> labels, std::span<const double> scores) {
  IMARS_REQUIRE(labels.size() == scores.size(), "auc: size mismatch");
  const auto r = ranks(scores);
  double pos_rank_sum = 0.0;
  std::size_t npos = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] != 0) {
      pos_rank_sum += r[i];
      ++npos;
    }
  }
  const std::size_t nneg = labels.size() - npos;
  if (npos == 0 || nneg == 0) return 0.5;
  // Mann–Whitney U statistic normalized to [0,1].
  const double u = pos_rank_sum - static_cast<double>(npos) *
                                      (static_cast<double>(npos) + 1.0) / 2.0;
  return u / (static_cast<double>(npos) * static_cast<double>(nneg));
}

}  // namespace imars::util
