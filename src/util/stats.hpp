// Small statistics helpers used by benches and the accuracy experiments.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace imars::util {

/// Streaming mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; `p` in [0, 100]. Copies + sorts.
double percentile(std::span<const double> values, double p);

/// Same interpolated percentile (`rank = p/100 * (n-1)`, tiny-n semantics
/// included) computed with `nth_element` selection instead of a full sort:
/// O(n) per call, and callers that already hold a scratch copy skip the
/// per-call allocation entirely. Partially reorders `values`. Returns
/// bit-identical results to `percentile` for every input — selection picks
/// the same order statistics the sort would.
double percentile_select(std::span<double> values, double p);

/// Pearson correlation of two equal-length series; 0 if degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (ties get average rank).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Area under the ROC curve for binary labels and scores. Labels must
/// contain at least one positive and one negative; otherwise returns 0.5.
double auc(std::span<const int> labels, std::span<const double> scores);

}  // namespace imars::util
