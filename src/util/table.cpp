#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace imars::util {

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  IMARS_REQUIRE(!header_.empty(), "Table: set header before rows");
  IMARS_REQUIRE(cells.size() <= header_.size(), "Table: row wider than header");
  cells.resize(header_.size());
  rows_.push_back({std::move(cells), false});
  return *this;
}

Table& Table::separator() {
  rows_.push_back({{}, true});
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    if (r.is_separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      width[c] = std::max(width[c], r.cells[c].size());
  }

  const auto rule = [&]() {
    os << '+';
    for (auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << ' ' << s << std::string(width[c] - s.size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  line(header_);
  rule();
  for (const auto& r : rows_) {
    if (r.is_separator)
      rule();
    else
      line(r.cells);
  }
  rule();
}

std::string Table::num(double value, int digits) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(digits) << value;
  std::string s = ss.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string Table::factor(double value, int digits) {
  if (value >= 10000.0) {
    std::ostringstream ss;
    ss << std::scientific << std::setprecision(1) << value;
    return ss.str() + "x";
  }
  return num(value, digits) + "x";
}

}  // namespace imars::util
