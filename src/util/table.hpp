// ASCII table printer used by the bench harness to mirror the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace imars::util {

/// Builds and renders a fixed-width ASCII table:
///
///   Table III: ET operation comparison
///   +----------+-----------+--------+
///   | Dataset  | MovieLens | Kaggle |
///   ...
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers (defines the column count).
  Table& header(std::vector<std::string> cells);

  /// Appends a row; must match the header width (short rows are padded).
  Table& row(std::vector<std::string> cells);

  /// Appends a horizontal separator between row groups.
  Table& separator();

  /// Renders the table.
  void print(std::ostream& os) const;

  /// Formats a double with `digits` significant decimals, trimming zeros.
  static std::string num(double value, int digits = 2);

  /// Formats a multiplicative factor, e.g. "16.8x".
  static std::string factor(double value, int digits = 1);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace imars::util
