#include "xbar/crossbar.hpp"

#include "util/error.hpp"

namespace imars::xbar {

using device::Component;
using device::Ns;

Crossbar::Crossbar(const device::DeviceProfile& profile,
                   device::EnergyLedger* ledger)
    : profile_(&profile),
      ledger_(ledger),
      rows_(profile.xbar_rows),
      cols_(profile.xbar_cols),
      w_(rows_ * cols_, 0) {
  IMARS_REQUIRE(ledger != nullptr, "Crossbar: ledger must not be null");
}

void Crossbar::load_weights(const tensor::QMatrix& w) {
  IMARS_REQUIRE(w.rows() <= rows_ && w.cols() <= cols_,
                "Crossbar::load_weights: block larger than tile");
  std::fill(w_.begin(), w_.end(), 0);
  for (std::size_t r = 0; r < w.rows(); ++r)
    for (std::size_t c = 0; c < w.cols(); ++c) w_[r * cols_ + c] = w.at(r, c);
  // Cell programming: one row-write-equivalent per occupied row.
  ledger_->charge(Component::kCmaRam,
                  profile_->cma_write.energy * static_cast<double>(w.rows()),
                  w.rows());
}

std::vector<std::int32_t> Crossbar::gemv(std::span<const std::int8_t> in,
                                         device::Ns* latency) const {
  IMARS_REQUIRE(in.size() == rows_, "Crossbar::gemv: input size mismatch");
  std::vector<std::int32_t> out(cols_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::int32_t x = in[r];
    if (x == 0) continue;
    const std::int8_t* wrow = &w_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c)
      out[c] += x * static_cast<std::int32_t>(wrow[c]);
  }
  ledger_->charge(Component::kCrossbar, profile_->xbar_matmul.energy);
  if (latency != nullptr) *latency = profile_->xbar_matmul.latency;
  return out;
}

std::int8_t Crossbar::weight(std::size_t r, std::size_t c) const {
  IMARS_REQUIRE(r < rows_ && c < cols_, "Crossbar::weight out of range");
  return w_[r * cols_ + c];
}

TiledMatVec::TiledMatVec(const device::DeviceProfile& profile,
                         device::EnergyLedger* ledger,
                         const tensor::QMatrix& w)
    : profile_(&profile),
      ledger_(ledger),
      in_dim_(w.cols()),
      out_dim_(w.rows()) {
  IMARS_REQUIRE(ledger != nullptr, "TiledMatVec: ledger must not be null");
  IMARS_REQUIRE(in_dim_ > 0 && out_dim_ > 0, "TiledMatVec: empty matrix");

  const std::size_t tr = profile.xbar_rows;  // input lanes per tile
  const std::size_t tc = profile.xbar_cols;  // output lanes per tile
  row_tiles_ = (in_dim_ + tr - 1) / tr;
  col_tiles_ = (out_dim_ + tc - 1) / tc;

  tiles_.reserve(row_tiles_ * col_tiles_);
  for (std::size_t i = 0; i < row_tiles_; ++i) {
    for (std::size_t j = 0; j < col_tiles_; ++j) {
      // Tile (i,j) holds W[j*tc .. , i*tr ..]^T in (input-row, output-col)
      // orientation.
      const std::size_t in_lo = i * tr;
      const std::size_t in_hi = std::min(in_dim_, in_lo + tr);
      const std::size_t out_lo = j * tc;
      const std::size_t out_hi = std::min(out_dim_, out_lo + tc);
      tensor::QMatrix block(in_hi - in_lo, out_hi - out_lo, w.params());
      for (std::size_t r = in_lo; r < in_hi; ++r)
        for (std::size_t c = out_lo; c < out_hi; ++c)
          block.at(r - in_lo, c - out_lo) = w.at(c, r);
      tiles_.emplace_back(profile, ledger);
      tiles_.back().load_weights(block);
    }
  }
}

std::vector<std::int32_t> TiledMatVec::gemv(std::span<const std::int8_t> in,
                                            device::Ns* latency) const {
  IMARS_REQUIRE(in.size() == in_dim_, "TiledMatVec::gemv: input size");
  const std::size_t tr = profile_->xbar_rows;
  const std::size_t tc = profile_->xbar_cols;

  std::vector<std::int32_t> out(out_dim_, 0);
  Ns tile_latency{0.0};
  for (std::size_t i = 0; i < row_tiles_; ++i) {
    // Zero-padded tile input slice.
    std::vector<std::int8_t> slice(tr, 0);
    const std::size_t in_lo = i * tr;
    const std::size_t in_hi = std::min(in_dim_, in_lo + tr);
    for (std::size_t r = in_lo; r < in_hi; ++r) slice[r - in_lo] = in[r];

    for (std::size_t j = 0; j < col_tiles_; ++j) {
      Ns lat{0.0};
      const auto partial = tiles_[i * col_tiles_ + j].gemv(slice, &lat);
      tile_latency = device::max(tile_latency, lat);
      const std::size_t out_lo = j * tc;
      const std::size_t out_hi = std::min(out_dim_, out_lo + tc);
      for (std::size_t c = out_lo; c < out_hi; ++c)
        out[c] += partial[c - out_lo];
    }
  }

  if (latency != nullptr) {
    // All tiles fire in parallel; partial sums along the input split merge
    // in a log2-depth digital reduction in the periphery.
    Ns merge{0.0};
    std::size_t levels = 0;
    for (std::size_t n = row_tiles_; n > 1; n = (n + 1) / 2) ++levels;
    merge = profile_->controller_cycle * static_cast<double>(levels);
    if (levels > 0)
      ledger_->charge(Component::kController,
                      profile_->controller_energy * static_cast<double>(levels),
                      levels);
    *latency = tile_latency + merge;
  }
  return out;
}

}  // namespace imars::xbar
