// 256x128 crossbar array for matrix-vector multiplication (Sec III-A2).
//
// Crossbars hold the DNN-stack weights: every input (row) connects to every
// output (column) through a memory cell whose conductance encodes an int8
// weight; driving the rows with the input vector produces column currents
// proportional to the dot products. The functional model computes the exact
// integer gemv (the paper quantizes the DNN to int8 and evaluates crossbars
// with Neurosim's 45nm FeFET FoM, Table II row 7).
//
// Geometry convention: a tile holds `rows` input lanes x `cols` output
// lanes, i.e. it computes out[c] = sum_r w[r][c] * in[r].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/ledger.hpp"
#include "device/profile.hpp"
#include "tensor/qtensor.hpp"

namespace imars::xbar {

/// One crossbar tile.
class Crossbar {
 public:
  Crossbar(const device::DeviceProfile& profile, device::EnergyLedger* ledger);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  /// Programs the tile with `w` (r x c <= rows x cols); unused cells are 0.
  /// Programming cost is accounted as one-time CMA-RAM-class writes.
  void load_weights(const tensor::QMatrix& w);

  /// Tile gemv: out[c] = sum_r w[r][c] * in[r]; `in` size must equal rows().
  /// Charges one xbar matmul FoM; latency via out-parameter.
  std::vector<std::int32_t> gemv(std::span<const std::int8_t> in,
                                 device::Ns* latency) const;

  /// Stored weight (for tests).
  std::int8_t weight(std::size_t r, std::size_t c) const;

 private:
  const device::DeviceProfile* profile_;
  device::EnergyLedger* ledger_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::int8_t> w_;  // rows x cols, row-major
};

/// A weight matrix tiled over as many crossbars as needed.
///
/// Computes out = W x for W of arbitrary (out_dim x in_dim):
///   * input dimension is split into ceil(in/rows) row-tiles,
///   * output dimension into ceil(out/cols) column-tiles,
///   * all tiles evaluate in parallel (one xbar matmul latency),
///   * partial sums along the input split are merged by the digital
///     periphery (one controller cycle per merge level).
class TiledMatVec {
 public:
  /// W is (out_dim x in_dim) int8; layout is transposed internally to the
  /// crossbar's (input-row x output-col) orientation.
  TiledMatVec(const device::DeviceProfile& profile,
              device::EnergyLedger* ledger, const tensor::QMatrix& w);

  std::size_t in_dim() const noexcept { return in_dim_; }
  std::size_t out_dim() const noexcept { return out_dim_; }
  std::size_t tile_count() const noexcept { return tiles_.size(); }

  /// out[o] = sum_i W[o][i] * in[i], exact int32.
  std::vector<std::int32_t> gemv(std::span<const std::int8_t> in,
                                 device::Ns* latency) const;

 private:
  const device::DeviceProfile* profile_;
  device::EnergyLedger* ledger_;
  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  std::size_t row_tiles_ = 0;
  std::size_t col_tiles_ = 0;
  std::vector<Crossbar> tiles_;  // row-tile major: tile(i,j) = tiles_[i*col_tiles_+j]
};

}  // namespace imars::xbar
