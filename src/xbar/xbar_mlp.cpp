#include "xbar/xbar_mlp.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/quant.hpp"

namespace imars::xbar {

using device::Ns;

namespace {

// Max-abs over a set of vectors; guards against all-zero calibration.
float max_abs(std::span<const tensor::Vector> vs) {
  float m = 0.0f;
  for (const auto& v : vs)
    for (float x : v) m = std::max(m, std::fabs(x));
  return m > 0.0f ? m : 1.0f;
}

}  // namespace

XbarMlp::XbarMlp(const device::DeviceProfile& profile,
                 device::EnergyLedger* ledger, const nn::Mlp& mlp,
                 std::span<const tensor::Vector> calibration)
    : profile_(&profile),
      ledger_(ledger),
      in_dim_(mlp.in_dim()),
      out_dim_(mlp.out_dim()) {
  IMARS_REQUIRE(!calibration.empty(), "XbarMlp: calibration inputs required");
  for (const auto& v : calibration)
    IMARS_REQUIRE(v.size() == in_dim_, "XbarMlp: calibration dim mismatch");

  // Propagate the calibration set through the float model to observe the
  // activation range at every layer boundary.
  std::vector<tensor::Vector> acts(calibration.begin(), calibration.end());
  std::vector<float> act_scale(mlp.layer_count() + 1, 1.0f);
  act_scale[0] = max_abs(acts) / 127.0f;
  for (std::size_t li = 0; li < mlp.layer_count(); ++li) {
    for (auto& v : acts) v = mlp.layer(li).infer(v);
    act_scale[li + 1] = max_abs(acts) / 127.0f;
  }

  layers_.reserve(mlp.layer_count());
  for (std::size_t li = 0; li < mlp.layer_count(); ++li) {
    const nn::Dense& dense = mlp.layer(li);
    const tensor::QMatrix wq = tensor::QMatrix::quantize(dense.weight());
    const float w_scale = wq.params().scale;
    const float in_scale = act_scale[li];

    std::vector<std::int32_t> bias_q(dense.out_dim());
    for (std::size_t o = 0; o < dense.out_dim(); ++o) {
      bias_q[o] = static_cast<std::int32_t>(
          std::lround(dense.bias()[o] / (in_scale * w_scale)));
    }

    layers_.push_back(Layer{
        TiledMatVec(profile, ledger, wq),
        std::move(bias_q),
        in_scale,
        w_scale,
        act_scale[li + 1],
        dense.activation(),
        li + 1 == mlp.layer_count(),
    });
  }
}

std::size_t XbarMlp::tile_count() const noexcept {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.matvec.tile_count();
  return n;
}

tensor::Vector XbarMlp::infer(std::span<const float> x,
                              device::Ns* latency) const {
  IMARS_REQUIRE(x.size() == in_dim_, "XbarMlp::infer: input dim mismatch");

  // Quantize the input with the first layer's activation scale.
  std::vector<std::int8_t> q(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    q[i] = util::QuantParams{layers_.front().in_scale}.quantize(x[i]);

  Ns total{0.0};
  tensor::Vector out_f;
  for (const auto& layer : layers_) {
    Ns lat{0.0};
    std::vector<std::int32_t> acc = layer.matvec.gemv(q, &lat);
    total += lat + profile_->xbar_layer_overhead;
    ledger_->charge(device::Component::kPeripheral,
                    profile_->xbar_layer_energy);
    for (std::size_t o = 0; o < acc.size(); ++o) acc[o] += layer.bias_q[o];

    const float acc_scale = layer.in_scale * layer.w_scale;
    if (layer.is_last) {
      // Final layer: dequantize; identity or sigmoid handled in float by the
      // digital periphery.
      out_f.resize(acc.size());
      for (std::size_t o = 0; o < acc.size(); ++o) {
        float v = acc_scale * static_cast<float>(acc[o]);
        if (layer.act == nn::Activation::kSigmoid)
          v = 1.0f / (1.0f + std::exp(-v));
        else if (layer.act == nn::Activation::kRelu)
          v = std::max(v, 0.0f);
        out_f[o] = v;
      }
    } else {
      // ReLU as int32 clamp, then requantize into the next layer's scale.
      const float requant = acc_scale / layer.out_scale;
      std::vector<std::int8_t> next(acc.size());
      for (std::size_t o = 0; o < acc.size(); ++o) {
        std::int32_t v = acc[o];
        if (layer.act == nn::Activation::kRelu && v < 0) v = 0;
        next[o] = util::sat_cast_i8(static_cast<std::int32_t>(
            std::lround(static_cast<float>(v) * requant)));
      }
      q = std::move(next);
    }
  }
  if (latency != nullptr) *latency = total;
  return out_f;
}

}  // namespace imars::xbar
