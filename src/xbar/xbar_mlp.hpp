// int8 MLP inference on crossbar banks.
//
// Maps a float-trained nn::Mlp onto TiledMatVec crossbar layers:
//   * weights are quantized per-layer (symmetric int8),
//   * activations are quantized per-layer with scales calibrated from
//     representative inputs (max-abs calibration),
//   * biases fold into the int32 accumulator domain,
//   * ReLU happens in the periphery as an int32 clamp before requantize,
//   * the final layer returns float (identity or sigmoid evaluated by the
//     digital periphery, as in the paper's Neurosim-based DNN-stack eval).
//
// Layers execute back-to-back: each layer's tiles fire in parallel, layers
// serialize — the composition the paper uses for the DNN stack (Sec IV-C3).
#pragma once

#include <span>
#include <vector>

#include "device/ledger.hpp"
#include "device/profile.hpp"
#include "nn/mlp.hpp"
#include "xbar/crossbar.hpp"

namespace imars::xbar {

/// A quantized MLP resident in crossbar arrays.
class XbarMlp {
 public:
  /// Quantizes `mlp` and programs the crossbars. `calibration` supplies
  /// representative inputs for activation-scale calibration (>= 1 needed).
  XbarMlp(const device::DeviceProfile& profile, device::EnergyLedger* ledger,
          const nn::Mlp& mlp,
          std::span<const tensor::Vector> calibration);

  std::size_t in_dim() const noexcept { return in_dim_; }
  std::size_t out_dim() const noexcept { return out_dim_; }
  std::size_t layer_count() const noexcept { return layers_.size(); }

  /// Total crossbar tiles programmed (for Table I style mapping stats).
  std::size_t tile_count() const noexcept;

  /// Runs int8 inference; returns float outputs and the end-to-end latency
  /// (sum of layer latencies) via out-parameter.
  tensor::Vector infer(std::span<const float> x, device::Ns* latency) const;

 private:
  struct Layer {
    TiledMatVec matvec;
    std::vector<std::int32_t> bias_q;  // bias in accumulator domain
    float in_scale = 1.0f;             // activation quant scale (input side)
    float w_scale = 1.0f;              // weight quant scale
    float out_scale = 1.0f;            // next layer's activation scale
    nn::Activation act = nn::Activation::kIdentity;
    bool is_last = false;
  };

  const device::DeviceProfile* profile_ = nullptr;
  device::EnergyLedger* ledger_ = nullptr;
  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  std::vector<Layer> layers_;
};

}  // namespace imars::xbar
