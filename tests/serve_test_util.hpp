// Shared helpers for the serving test suites: the "same seed => bit-
// identical ServeReport" comparator that used to be re-implemented inline
// wherever determinism was asserted (overlap on/off, seed replays, QoS
// grids). Bit-identical means EXACT double equality on every timestamp,
// latency and energy figure — the engine's determinism contract is that
// scheduling mode never changes accounting, not that it stays "close".
#pragma once

#include <gtest/gtest.h>

#include <cstddef>

#include "serve/serve_stats.hpp"

namespace imars::serve_test {

/// Asserts two serving reports are bit-identical: same queries in the same
/// order with equal timestamps/latencies/energies/results, same batches,
/// same cache counters, same per-shard busy time, same per-class
/// accounting, same write-back traffic. Host-side telemetry
/// (ServeReport::host_span_us, ServeReport::spec) is deliberately NOT
/// compared — those fields describe how the simulator ran on the host
/// (wall clock, speculative window bookkeeping), which the determinism
/// contract explicitly allows to differ between scheduling modes.
inline void expect_reports_identical(const serve::ServeReport& a,
                                     const serve::ServeReport& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_DOUBLE_EQ(a.makespan.value, b.makespan.value);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
  EXPECT_EQ(a.cache.warm_hits, b.cache.warm_hits);
  EXPECT_EQ(a.cache.cold_faults, b.cache.cold_faults);
  EXPECT_EQ(a.cache.cold_rows_fetched, b.cache.cold_rows_fetched);
  EXPECT_EQ(a.cache.warm_evictions, b.cache.warm_evictions);
  EXPECT_EQ(a.cache.promotions, b.cache.promotions);
  EXPECT_EQ(a.cache.flushes_warm, b.cache.flushes_warm);
  EXPECT_EQ(a.cache.flushes_cold, b.cache.flushes_cold);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.flush_bytes, b.flush_bytes);
  EXPECT_DOUBLE_EQ(a.update_cost.latency.value, b.update_cost.latency.value);

  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& qa = a.queries[i];
    const auto& qb = b.queries[i];
    ASSERT_EQ(qa.id, qb.id) << "query " << i;
    EXPECT_EQ(qa.user, qb.user);
    EXPECT_EQ(qa.qos_class, qb.qos_class);
    EXPECT_EQ(qa.batch, qb.batch);
    EXPECT_EQ(qa.batch_size, qb.batch_size);
    EXPECT_EQ(qa.home_shard, qb.home_shard);
    EXPECT_EQ(qa.candidates, qb.candidates);
    EXPECT_DOUBLE_EQ(qa.enqueue.value, qb.enqueue.value) << "query " << i;
    EXPECT_DOUBLE_EQ(qa.dispatch.value, qb.dispatch.value) << "query " << i;
    EXPECT_DOUBLE_EQ(qa.complete.value, qb.complete.value) << "query " << i;
    EXPECT_DOUBLE_EQ(qa.device_time.value, qb.device_time.value);
    EXPECT_DOUBLE_EQ(qa.energy.value, qb.energy.value);
    ASSERT_EQ(qa.topk.size(), qb.topk.size()) << "query " << i;
    for (std::size_t j = 0; j < qa.topk.size(); ++j) {
      EXPECT_EQ(qa.topk[j].item, qb.topk[j].item)
          << "query " << i << " position " << j;
      EXPECT_FLOAT_EQ(qa.topk[j].score, qb.topk[j].score);
    }
  }

  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    ASSERT_EQ(a.shards[s].stage_busy.size(), b.shards[s].stage_busy.size());
    for (std::size_t st = 0; st < a.shards[s].stage_busy.size(); ++st)
      EXPECT_DOUBLE_EQ(a.shards[s].stage_busy[st].value,
                       b.shards[s].stage_busy[st].value)
          << "shard " << s << " stage " << st;
  }

  ASSERT_EQ(a.classes.size(), b.classes.size());
  for (std::size_t c = 0; c < a.classes.size(); ++c) {
    EXPECT_EQ(a.classes[c].queries, b.classes[c].queries) << "class " << c;
    EXPECT_EQ(a.classes[c].batches, b.classes[c].batches);
    EXPECT_EQ(a.classes[c].slo_violations, b.classes[c].slo_violations);
    EXPECT_DOUBLE_EQ(a.classes[c].device_time.value,
                     b.classes[c].device_time.value)
        << "class " << c;
  }
}

/// Asserts two serving reports answered the same queries with the same
/// RESULTS: identical id/user sequence and identical merged top-k items and
/// scores per query. Timestamps, latencies, batching, placement and energy
/// are deliberately NOT compared — this is the placement-invariance
/// contract (any ShardMap/PlacementPolicy is a disjoint cover, so it may
/// move work between shards but never change what is computed).
inline void expect_results_identical(const serve::ServeReport& a,
                                     const serve::ServeReport& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& qa = a.queries[i];
    const auto& qb = b.queries[i];
    ASSERT_EQ(qa.id, qb.id) << "query " << i;
    EXPECT_EQ(qa.user, qb.user);
    EXPECT_EQ(qa.qos_class, qb.qos_class);
    EXPECT_EQ(qa.candidates, qb.candidates);
    ASSERT_EQ(qa.topk.size(), qb.topk.size()) << "query " << i;
    for (std::size_t j = 0; j < qa.topk.size(); ++j) {
      EXPECT_EQ(qa.topk[j].item, qb.topk[j].item)
          << "query " << i << " position " << j;
      EXPECT_FLOAT_EQ(qa.topk[j].score, qb.topk[j].score);
    }
  }
}

}  // namespace imars::serve_test
