// Tests for the functional iMARS machine: table loading, pooled lookups vs
// an integer oracle, the TCAM NNS vs brute force, CTR-buffer top-k, timing
// modes and energy accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/accelerator.hpp"
#include "core/calibration.hpp"
#include "lsh/lsh.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using core::ArchConfig;
using core::ImarsAccelerator;
using core::LookupRequest;
using core::TimingMode;
using device::Component;
using device::DeviceProfile;
using tensor::Matrix;
using tensor::QMatrix;

QMatrix random_table(std::size_t rows, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return QMatrix::quantize(Matrix::randn(rows, 32, 0.5f, rng));
}

struct Fixture {
  DeviceProfile profile = DeviceProfile::fefet45();
  ArchConfig arch;
  ImarsAccelerator acc{arch, profile};
};

TEST(Accelerator, GeometryChecks) {
  DeviceProfile profile = DeviceProfile::fefet45();
  ArchConfig bad;
  bad.cma_rows = 128;  // mismatch with profile
  EXPECT_THROW(ImarsAccelerator(bad, profile), Error);

  ArchConfig bad2;
  bad2.lsh_bits = 512;  // functional machine caps at one CMA width
  EXPECT_THROW(ImarsAccelerator(bad2, profile), Error);
}

TEST(Accelerator, LoadUietCensus) {
  Fixture f;
  const auto t0 = f.acc.load_uiet("small", random_table(100, 1));
  const auto t1 = f.acc.load_uiet("big", random_table(6040, 2));
  EXPECT_EQ(t0, 0u);
  EXPECT_EQ(t1, 1u);
  EXPECT_EQ(f.acc.table_count(), 2u);
  EXPECT_EQ(f.acc.table_rows(0), 100u);
  EXPECT_EQ(f.acc.table_rows(1), 6040u);
  EXPECT_EQ(f.acc.active_banks(), 2u);
  EXPECT_EQ(f.acc.active_cmas(), 1u + 24u);  // ceil(100/256) + ceil(6040/256)
  EXPECT_EQ(f.acc.active_mats(), 2u);
}

TEST(Accelerator, LoadRejectsOversize) {
  Fixture f;
  // One bank holds M*C*R = 4*32*256 = 32768 rows.
  EXPECT_THROW(f.acc.load_uiet("huge", random_table(40000, 3)), Error);
}

TEST(Accelerator, LoadRejectsWrongDim) {
  Fixture f;
  util::Xoshiro256 rng(4);
  const QMatrix narrow = QMatrix::quantize(Matrix::randn(10, 16, 1.0f, rng));
  EXPECT_THROW(f.acc.load_uiet("narrow", narrow), Error);
}

TEST(Accelerator, OutOfBanksThrows) {
  DeviceProfile profile = DeviceProfile::fefet45();
  ArchConfig arch;
  arch.banks = 1;
  ImarsAccelerator acc(arch, profile);
  acc.load_uiet("a", random_table(10, 5));
  EXPECT_THROW(acc.load_uiet("b", random_table(10, 6)), Error);
}

// ---------- lookup + pool ----------------------------------------------------

TEST(Accelerator, SingleLookupMatchesTable) {
  Fixture f;
  const QMatrix table = random_table(500, 7);
  const auto id = f.acc.load_uiet("t", table);
  f.acc.reset_energy();

  for (std::size_t row : {0ul, 255ul, 256ul, 499ul}) {
    const LookupRequest req{id, {row}, false};
    recsys::OpCost cost;
    const auto out = f.acc.lookup_pooled(std::span(&req, 1),
                                         TimingMode::kActualPlacement, &cost);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FLOAT_EQ(out[0].scale, table.params().scale);
    for (std::size_t c = 0; c < 32; ++c)
      EXPECT_EQ(out[0].lanes[c], static_cast<std::int32_t>(table.at(row, c)));
    EXPECT_GT(cost.latency.value, 0.0);
    EXPECT_GT(cost.energy.value, 0.0);
  }
}

TEST(Accelerator, PooledLookupEqualsIntegerSum) {
  Fixture f;
  const QMatrix table = random_table(1000, 8);
  const auto id = f.acc.load_uiet("t", table);

  util::Xoshiro256 rng(9);
  std::vector<std::size_t> indices;
  for (int i = 0; i < 17; ++i) indices.push_back(rng.below(1000));

  const LookupRequest req{id, indices, true};
  const auto out = f.acc.lookup_pooled(std::span(&req, 1),
                                       TimingMode::kActualPlacement, nullptr);
  std::vector<std::int32_t> expected(32, 0);
  for (auto idx : indices)
    for (std::size_t c = 0; c < 32; ++c)
      expected[c] += static_cast<std::int32_t>(table.at(idx, c));
  EXPECT_EQ(out[0].lanes, expected);
  EXPECT_EQ(out[0].count, indices.size());
  EXPECT_TRUE(out[0].mean_pool);

  // Dequantized mean = scale * sum / n.
  const auto v = out[0].dequantized();
  EXPECT_NEAR(v[0],
              table.params().scale * static_cast<float>(expected[0]) / 17.0f,
              1e-6f);
}

TEST(Accelerator, MultiBankLatencyIsMaxPlusBus) {
  Fixture f;
  const auto id0 = f.acc.load_uiet("a", random_table(300, 10));
  const auto id1 = f.acc.load_uiet("b", random_table(300, 11));
  f.acc.reset_energy();

  const std::vector<LookupRequest> one = {{id0, {5}, false}};
  recsys::OpCost c1;
  (void)f.acc.lookup_pooled(one, TimingMode::kActualPlacement, &c1);

  const std::vector<LookupRequest> two = {{id0, {5}, false}, {id1, {7}, false}};
  recsys::OpCost c2;
  (void)f.acc.lookup_pooled(two, TimingMode::kActualPlacement, &c2);

  // Banks in parallel: two banks cost only one extra RSC beat, not 2x.
  EXPECT_LT(c2.latency.value, 1.5 * c1.latency.value);
  EXPECT_GT(c2.latency.value, c1.latency.value);
}

TEST(Accelerator, WorstCaseTimingDominatesActual) {
  Fixture f;
  const auto id = f.acc.load_uiet("t", random_table(2000, 12));
  // Spread indices across CMAs: actual placement parallelizes them, the
  // worst-case model serializes read+write+add chains.
  std::vector<std::size_t> indices = {0, 300, 600, 900, 1200, 1500, 1800, 1999};
  const LookupRequest req{id, indices, true};

  recsys::OpCost actual, worst;
  (void)f.acc.lookup_pooled(std::span(&req, 1), TimingMode::kActualPlacement,
                            &actual);
  (void)f.acc.lookup_pooled(std::span(&req, 1),
                            TimingMode::kWorstCaseSameArray, &worst);
  EXPECT_GT(worst.latency.value, actual.latency.value);

  // Functional result is identical in both modes.
  const auto a = f.acc.lookup_pooled(std::span(&req, 1),
                                     TimingMode::kActualPlacement, nullptr);
  const auto w = f.acc.lookup_pooled(std::span(&req, 1),
                                     TimingMode::kWorstCaseSameArray, nullptr);
  EXPECT_EQ(a[0].lanes, w[0].lanes);
}

TEST(Accelerator, LookupOutOfRangeThrows) {
  Fixture f;
  const auto id = f.acc.load_uiet("t", random_table(100, 13));
  const LookupRequest req{id, {100}, false};
  EXPECT_THROW((void)f.acc.lookup_pooled(std::span(&req, 1),
                                         TimingMode::kActualPlacement, nullptr),
               Error);
  const LookupRequest empty{id, {}, false};
  EXPECT_THROW((void)f.acc.lookup_pooled(std::span(&empty, 1),
                                         TimingMode::kActualPlacement, nullptr),
               Error);
}

TEST(Accelerator, PeripheralEnergyScalesWithActiveArrays) {
  Fixture f;
  const auto small = f.acc.load_uiet("small", random_table(100, 14));   // 1 CMA
  const auto big = f.acc.load_uiet("big", random_table(6000, 15));      // 24 CMAs
  f.acc.reset_energy();

  const LookupRequest rs{small, {3}, false};
  recsys::OpCost cs;
  (void)f.acc.lookup_pooled(std::span(&rs, 1), TimingMode::kActualPlacement, &cs);

  const LookupRequest rb{big, {3}, false};
  recsys::OpCost cb;
  (void)f.acc.lookup_pooled(std::span(&rb, 1), TimingMode::kActualPlacement, &cb);

  // Same op on a 24x bigger table costs ~24x the peripheral energy.
  EXPECT_GT(cb.energy.value, 10.0 * cs.energy.value);
}

TEST(Accelerator, ReadRowMatchesTable) {
  Fixture f;
  const QMatrix table = random_table(700, 16);
  const auto id = f.acc.load_uiet("t", table);
  recsys::OpCost cost;
  const auto out = f.acc.read_row(id, 650, &cost);
  for (std::size_t c = 0; c < 32; ++c)
    EXPECT_EQ(out.lanes[c], static_cast<std::int32_t>(table.at(650, c)));
  EXPECT_GT(cost.latency.value, 0.0);
  EXPECT_THROW((void)f.acc.read_row(id, 700, nullptr), Error);
}

// ---------- NNS ----------------------------------------------------------------

TEST(Accelerator, NnsMatchesBruteForceHamming) {
  Fixture f;
  const QMatrix table = random_table(900, 17);
  const lsh::RandomHyperplaneLsh hasher(32, 256, 99);
  const Matrix deq = table.dequantize();
  std::vector<util::BitVec> sigs;
  for (std::size_t r = 0; r < deq.rows(); ++r)
    sigs.push_back(hasher.encode(deq.row(r)));
  const auto id = f.acc.load_itet("ItET", table, sigs);
  f.acc.reset_energy();

  util::Xoshiro256 rng(18);
  for (std::size_t radius : {64ul, 96ul, 120ul}) {
    tensor::Vector q(32);
    for (auto& x : q) x = static_cast<float>(rng.normal());
    const auto qsig = hasher.encode(q);

    recsys::OpCost cost;
    const auto got = f.acc.nns(id, qsig, radius, &cost);
    const auto expected = [&] {
      std::vector<std::size_t> out;
      for (std::size_t r = 0; r < sigs.size(); ++r)
        if (sigs[r].hamming(qsig) <= radius) out.push_back(r);
      return out;
    }();
    EXPECT_EQ(got, expected) << "radius " << radius;
    // O(1) search: latency is search + encode, independent of row count.
    EXPECT_LT(cost.latency.value, 2.0);
  }
}

TEST(Accelerator, NnsRequiresSignatures) {
  Fixture f;
  const auto id = f.acc.load_uiet("t", random_table(100, 19));
  EXPECT_THROW((void)f.acc.nns(id, util::BitVec(256), 10, nullptr), Error);
}

TEST(Accelerator, NnsEnergyCountsAllSignatureArrays) {
  Fixture f;
  const QMatrix table = random_table(900, 20);  // 4 data CMAs -> 4 sig CMAs
  const lsh::RandomHyperplaneLsh hasher(32, 256, 98);
  const Matrix deq = table.dequantize();
  std::vector<util::BitVec> sigs;
  for (std::size_t r = 0; r < deq.rows(); ++r)
    sigs.push_back(hasher.encode(deq.row(r)));
  const auto id = f.acc.load_itet("ItET", table, sigs);
  f.acc.reset_energy();

  recsys::OpCost cost;
  (void)f.acc.nns(id, sigs[0], 5, &cost);
  // 4 searched arrays at 13.8 pJ each, plus periphery.
  EXPECT_GE(cost.energy.value, 4 * 13.8);
  EXPECT_EQ(f.acc.ledger().ops(Component::kCmaSearch), 4u);
}

// ---------- top-k -----------------------------------------------------------------

TEST(Accelerator, TopkCtrSelectsHighestScores) {
  Fixture f;
  const std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.7f, 0.2f, 0.95f};
  recsys::OpCost cost;
  const auto top = f.acc.topk_ctr(scores, 3, &cost);
  EXPECT_EQ(top, (std::vector<std::size_t>{5, 1, 3}));
  EXPECT_GT(cost.latency.value, 0.0);
}

TEST(Accelerator, TopkCtrHandlesKLargerThanN) {
  Fixture f;
  const std::vector<float> scores = {0.3f, 0.6f};
  const auto top = f.acc.topk_ctr(scores, 10, nullptr);
  EXPECT_EQ(top, (std::vector<std::size_t>{1, 0}));
}

TEST(Accelerator, TopkCtrRejectsOversizedBatch) {
  Fixture f;
  const std::vector<float> scores(300, 0.5f);  // > 256 CTR-buffer rows
  EXPECT_THROW((void)f.acc.topk_ctr(scores, 5, nullptr), Error);
}

TEST(Accelerator, TopkCtrQuantizedTiesKeepIndexOrder) {
  Fixture f;
  // Scores closer than 1/256 quantize to the same thermometer code; the
  // final host-side sort on raw scores still orders them deterministically.
  const std::vector<float> scores = {0.5f, 0.5f + 1e-6f, 0.4f};
  const auto top = f.acc.topk_ctr(scores, 2, nullptr);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 0u);
}

TEST(Accelerator, ResetEnergyClearsLedger) {
  Fixture f;
  (void)f.acc.load_uiet("t", random_table(100, 21));
  EXPECT_GT(f.acc.ledger().total().value, 0.0);
  f.acc.reset_energy();
  EXPECT_DOUBLE_EQ(f.acc.ledger().total().value, 0.0);
}

}  // namespace
}  // namespace imars
