// Tests for the near-memory adder trees: arithmetic, multi-round behaviour,
// latency/energy accounting.
#include <gtest/gtest.h>

#include "adder/adder_tree.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using adder::IntraBankAdderTree;
using adder::IntraMatAdderTree;
using adder::Lanes;
using device::Component;
using device::DeviceProfile;
using device::EnergyLedger;

struct Fixture {
  DeviceProfile profile = DeviceProfile::fefet45();
  EnergyLedger ledger;
};

Lanes lanes_of(std::initializer_list<std::int32_t> head, std::size_t n = 32) {
  Lanes l(n, 0);
  std::size_t i = 0;
  for (auto v : head) l[i++] = v;
  return l;
}

TEST(IntraMat, SumsLaneWise) {
  Fixture f;
  IntraMatAdderTree tree(f.profile, &f.ledger, 32);
  const std::vector<Lanes> in = {lanes_of({1, 2, 3}), lanes_of({10, 20, 30}),
                                 lanes_of({-5, 0, 5})};
  device::Ns lat{0.0};
  const Lanes out = tree.sum(in, &lat);
  EXPECT_EQ(out[0], 6);
  EXPECT_EQ(out[1], 22);
  EXPECT_EQ(out[2], 38);
  EXPECT_DOUBLE_EQ(lat.value, 14.7);  // one tree pass (Table II)
  EXPECT_DOUBLE_EQ(f.ledger.energy(Component::kIntraMatTree).value, 137.0);
}

TEST(IntraMat, RejectsTooManyInputs) {
  Fixture f;
  IntraMatAdderTree tree(f.profile, &f.ledger, 2);
  const std::vector<Lanes> in(3, Lanes(32, 0));
  EXPECT_THROW((void)tree.sum(in, nullptr), Error);
}

TEST(IntraMat, RejectsEmptyAndMismatched) {
  Fixture f;
  IntraMatAdderTree tree(f.profile, &f.ledger, 4);
  EXPECT_THROW((void)tree.sum({}, nullptr), Error);
  const std::vector<Lanes> bad = {Lanes(32, 0), Lanes(16, 0)};
  EXPECT_THROW((void)tree.sum(bad, nullptr), Error);
}

TEST(IntraMat, WideValuesDoNotWrapAt8Bits) {
  Fixture f;
  IntraMatAdderTree tree(f.profile, &f.ledger, 32);
  // 32 inputs of 127 per lane: the tree is a synthesized 256-bit adder, so
  // partial sums go far beyond int8.
  const std::vector<Lanes> in(32, Lanes(32, 127));
  const Lanes out = tree.sum(in, nullptr);
  EXPECT_EQ(out[0], 127 * 32);
}

// ---------- Intra-bank -------------------------------------------------------

TEST(IntraBank, RoundsFormula) {
  Fixture f;
  IntraBankAdderTree tree(f.profile, &f.ledger, 4);
  // k <= 1: nothing to add.
  EXPECT_EQ(tree.rounds_for(0), 0u);
  EXPECT_EQ(tree.rounds_for(1), 0u);
  // Up to fan-in: one shot (the paper's "four 256-bit inputs in one shot").
  EXPECT_EQ(tree.rounds_for(2), 1u);
  EXPECT_EQ(tree.rounds_for(4), 1u);
  // Beyond: running sum loops back, 3 new inputs per round.
  EXPECT_EQ(tree.rounds_for(5), 2u);
  EXPECT_EQ(tree.rounds_for(7), 2u);
  EXPECT_EQ(tree.rounds_for(8), 3u);
  EXPECT_EQ(tree.rounds_for(10), 3u);
  EXPECT_EQ(tree.rounds_for(104), 35u);  // Criteo-scale mat count
}

class IntraBankRounds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IntraBankRounds, SumAndLatencyScaleWithRounds) {
  const std::size_t k = GetParam();
  Fixture f;
  IntraBankAdderTree tree(f.profile, &f.ledger, 4);
  util::Xoshiro256 rng(k);

  std::vector<Lanes> in;
  Lanes expected(32, 0);
  for (std::size_t i = 0; i < k; ++i) {
    Lanes l(32);
    for (auto& v : l)
      v = static_cast<std::int32_t>(rng.below(2001)) - 1000;
    for (std::size_t c = 0; c < 32; ++c) expected[c] += l[c];
    in.push_back(std::move(l));
  }

  device::Ns lat{0.0};
  const Lanes out = tree.sum(in, &lat);
  EXPECT_EQ(out, expected);
  EXPECT_DOUBLE_EQ(lat.value, 44.2 * static_cast<double>(tree.rounds_for(k)));
  EXPECT_EQ(f.ledger.ops(Component::kIntraBankTree), tree.rounds_for(k));
}

INSTANTIATE_TEST_SUITE_P(Ks, IntraBankRounds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 13, 26));

TEST(IntraBank, ConfigurableFanIn) {
  Fixture f;
  IntraBankAdderTree wide(f.profile, &f.ledger, 8);
  EXPECT_EQ(wide.rounds_for(8), 1u);
  EXPECT_EQ(wide.rounds_for(9), 2u);
  EXPECT_EQ(wide.rounds_for(15), 2u);  // 8 in round 1, 7 more in round 2
  EXPECT_EQ(wide.rounds_for(16), 3u);  // one input spills into a third round
  IntraBankAdderTree narrow(f.profile, &f.ledger, 2);
  EXPECT_EQ(narrow.rounds_for(2), 1u);
  EXPECT_EQ(narrow.rounds_for(4), 3u);  // 2, +1, +1
}

TEST(IntraBank, RejectsDegenerateFanIn) {
  Fixture f;
  EXPECT_THROW(IntraBankAdderTree(f.profile, &f.ledger, 1), Error);
}

}  // namespace
}  // namespace imars
