// Tests for the iMARS backends: functional parity with the software
// reference, per-stage cost accounting, flow correctness.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baseline/cpu_backend.hpp"
#include "baseline/exact_nns.hpp"
#include "core/backend.hpp"
#include "data/criteo.hpp"
#include "data/movielens.hpp"
#include "recsys/dlrm.hpp"
#include "recsys/youtube_dnn.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace imars {
namespace {

using core::ArchConfig;
using core::ImarsBackend;
using core::ImarsBackendConfig;
using core::ImarsCtrBackend;
using data::MovieLensConfig;
using data::MovieLensSynth;
using device::DeviceProfile;
using recsys::OpKind;
using recsys::StageStats;
using recsys::YoutubeDnn;
using recsys::YoutubeDnnConfig;

// Small but realistic trained setup shared by the tests (32-d embeddings so
// the hardware constraint emb_dim * 8 == cma_cols holds).
struct BackendFixture {
  BackendFixture() {
    MovieLensConfig dcfg;
    dcfg.num_users = 100;
    dcfg.num_items = 90;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 23;
    ds = std::make_unique<MovieLensSynth>(dcfg);

    YoutubeDnnConfig mcfg;  // default 32-d embeddings, paper MLPs
    mcfg.negatives = 4;
    mcfg.seed = 29;
    model = std::make_unique<YoutubeDnn>(ds->schema(), mcfg);
    util::Xoshiro256 rng(31);
    for (int e = 0; e < 2; ++e) model->train_filter_epoch(*ds, rng);
    model->train_rank_epoch(*ds, rng);

    for (std::size_t u = 0; u < 8; ++u)
      calib.push_back(model->make_context(*ds, u));

    ImarsBackendConfig bcfg;
    bcfg.nns_radius = 110;
    backend = std::make_unique<ImarsBackend>(*model, ArchConfig{},
                                             DeviceProfile::fefet45(), bcfg,
                                             calib);
  }

  std::unique_ptr<MovieLensSynth> ds;
  std::unique_ptr<YoutubeDnn> model;
  std::vector<recsys::UserContext> calib;
  std::unique_ptr<ImarsBackend> backend;
};

TEST(ImarsBackend, LoadsAllTablesIntoBanks) {
  BackendFixture f;
  const auto& acc = f.backend->accelerator();
  // 6 UIETs + 1 ItET.
  EXPECT_EQ(acc.table_count(), 7u);
  EXPECT_EQ(acc.active_banks(), 7u);
  // Energy ledger was reset after loading.
  EXPECT_DOUBLE_EQ(acc.ledger().total().value, 0.0);
}

TEST(ImarsBackend, HardwareUserEmbeddingTracksFloatTower) {
  BackendFixture f;
  util::RunningStats cos_sim;
  for (std::size_t u = 0; u < 20; ++u) {
    const auto ctx = f.model->make_context(*f.ds, u);
    const auto hw = f.backend->user_embedding_hw(ctx, nullptr);
    const auto sw = f.model->user_embedding(ctx);
    cos_sim.add(tensor::cosine(hw, sw));
  }
  // int8 ETs + int8 crossbar DNN vs float reference: directions align.
  EXPECT_GT(cos_sim.mean(), 0.95);
}

TEST(ImarsBackend, FilterMatchesBruteForceHammingOnHwEmbedding) {
  BackendFixture f;
  for (std::size_t u = 0; u < 10; ++u) {
    const auto ctx = f.model->make_context(*f.ds, u);
    const auto candidates = f.backend->filter(ctx, nullptr);

    // Reproduce the expected set: signature of the *hardware* user
    // embedding against signatures of the quantized item embeddings.
    const auto hw_emb = f.backend->user_embedding_hw(ctx, nullptr);
    const auto qsig = f.backend->signature_of(hw_emb);
    const auto items_q = f.model->item_table().quantized();
    const auto deq = items_q.dequantize();
    std::vector<std::size_t> expected;
    for (std::size_t r = 0; r < deq.rows(); ++r) {
      if (f.backend->signature_of(deq.row(r)).hamming(qsig) <=
          f.backend->config().nns_radius)
        expected.push_back(r);
    }
    if (expected.size() > f.backend->config().max_candidates)
      expected.resize(f.backend->config().max_candidates);
    EXPECT_EQ(candidates, expected) << "user " << u;
  }
}

TEST(ImarsBackend, FilterStatsCoverEtDnnNns) {
  BackendFixture f;
  const auto ctx = f.model->make_context(*f.ds, 0);
  StageStats stats;
  (void)f.backend->filter(ctx, &stats);
  EXPECT_GT(stats.at(OpKind::kEtLookup).latency.value, 0.0);
  EXPECT_GT(stats.at(OpKind::kEtLookup).energy.value, 0.0);
  EXPECT_GT(stats.at(OpKind::kDnn).latency.value, 0.0);
  EXPECT_GT(stats.at(OpKind::kNns).latency.value, 0.0);
  // NNS is O(1): far cheaper than the DNN or the lookups.
  EXPECT_LT(stats.at(OpKind::kNns).latency.value,
            stats.at(OpKind::kDnn).latency.value);
}

TEST(ImarsBackend, RankScoresTrackFloatCtr) {
  BackendFixture f;
  const auto ctx = f.model->make_context(*f.ds, 1);
  const std::vector<std::size_t> candidates = {2, 11, 23, 37, 41, 53, 67};
  StageStats stats;
  const auto ranked = f.backend->rank(ctx, candidates, 5, &stats);
  ASSERT_EQ(ranked.size(), 5u);

  // Descending scores, items drawn from the candidate list.
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  for (const auto& r : ranked) {
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), r.item),
              candidates.end());
    // Hardware CTR approximates the float model's CTR.
    EXPECT_NEAR(r.score, f.model->ctr(ctx, r.item), 0.15f);
  }
  EXPECT_GT(stats.at(OpKind::kTopK).latency.value, 0.0);
}

TEST(ImarsBackend, RankTopKAgreesWithFloatOracleMostly) {
  BackendFixture f;
  // Overlap between hardware top-k and float top-k across users.
  double overlap = 0.0;
  const std::size_t users = 15, k = 5;
  std::vector<std::size_t> candidates(30);
  for (std::size_t i = 0; i < 30; ++i) candidates[i] = i * 3;
  for (std::size_t u = 0; u < users; ++u) {
    const auto ctx = f.model->make_context(*f.ds, u);
    const auto hw = f.backend->rank(ctx, candidates, k, nullptr);
    std::vector<std::pair<float, std::size_t>> sw;
    for (auto c : candidates) sw.push_back({f.model->ctr(ctx, c), c});
    std::sort(sw.rbegin(), sw.rend());
    std::size_t inter = 0;
    for (const auto& h : hw)
      for (std::size_t j = 0; j < k; ++j)
        if (sw[j].second == h.item) ++inter;
    overlap += static_cast<double>(inter) / static_cast<double>(k);
  }
  EXPECT_GT(overlap / static_cast<double>(users), 0.6);
}

TEST(ImarsBackend, EmptyCandidateListYieldsEmptyRanking) {
  BackendFixture f;
  const auto ctx = f.model->make_context(*f.ds, 0);
  EXPECT_TRUE(f.backend->rank(ctx, {}, 5, nullptr).empty());
}

TEST(ImarsBackend, RecommendComposesBothStages) {
  BackendFixture f;
  const auto ctx = f.model->make_context(*f.ds, 4);
  StageStats fs, rs;
  const auto recs = recsys::recommend(*f.backend, ctx, 5, &fs, &rs);
  EXPECT_LE(recs.size(), 5u);
  EXPECT_GT(fs.total().latency.value, 0.0);
  if (!recs.empty()) {
    EXPECT_GT(rs.total().latency.value, 0.0);
  }
}

TEST(ImarsBackend, CandidateCapRespectsCtrBuffer) {
  BackendFixture f;
  ImarsBackendConfig bad;
  bad.max_candidates = 1000;  // exceeds 256 CTR-buffer rows
  EXPECT_THROW(ImarsBackend(*f.model, ArchConfig{},
                            DeviceProfile::fefet45(), bad, f.calib),
               Error);
}

// ---------- DLRM on iMARS -----------------------------------------------------

struct CtrFixture {
  CtrFixture() {
    data::CriteoConfig dcfg;
    dcfg.num_samples = 400;
    dcfg.seed = 37;
    ds = std::make_unique<data::CriteoSynth>(dcfg);

    recsys::DlrmConfig mcfg;  // paper defaults (32-d embeddings)
    mcfg.seed = 41;
    model = std::make_unique<recsys::Dlrm>(ds->schema(), mcfg);
    util::Xoshiro256 rng(43);
    model->train_epoch(*ds, rng);

    std::vector<data::CriteoSample> calib;
    for (std::size_t i = 0; i < 8; ++i) calib.push_back(ds->sample(i));
    backend = std::make_unique<ImarsCtrBackend>(
        *model, ArchConfig{}, DeviceProfile::fefet45(),
        core::TimingMode::kActualPlacement, calib);
  }
  std::unique_ptr<data::CriteoSynth> ds;
  std::unique_ptr<recsys::Dlrm> model;
  std::unique_ptr<ImarsCtrBackend> backend;
};

TEST(ImarsCtrBackend, Loads26Banks) {
  CtrFixture f;
  EXPECT_EQ(f.backend->accelerator().active_banks(), 26u);
}

TEST(ImarsCtrBackend, ScoresTrackFloatDlrm) {
  CtrFixture f;
  util::RunningStats err;
  for (std::size_t i = 0; i < 30; ++i) {
    const auto& s = f.ds->sample(i);
    const float hw = f.backend->score(s.dense, s.sparse, nullptr);
    const float sw = f.model->infer(s.dense, s.sparse);
    EXPECT_GE(hw, 0.0f);
    EXPECT_LE(hw, 1.0f);
    err.add(std::abs(hw - sw));
  }
  EXPECT_LT(err.mean(), 0.06);
}

TEST(ImarsCtrBackend, StatsSplitEtAndDnn) {
  CtrFixture f;
  const auto& s = f.ds->sample(0);
  StageStats stats;
  (void)f.backend->score(s.dense, s.sparse, &stats);
  EXPECT_GT(stats.at(OpKind::kEtLookup).latency.value, 0.0);
  EXPECT_GT(stats.at(OpKind::kDnn).latency.value, 0.0);
  // DNN (bottom + top crossbar passes) dominates a single-impression score.
  EXPECT_GT(stats.at(OpKind::kDnn).latency.value,
            stats.at(OpKind::kEtLookup).latency.value);
}

TEST(ImarsCtrBackend, SparseCountMismatchThrows) {
  CtrFixture f;
  const auto& s = f.ds->sample(0);
  std::vector<std::size_t> wrong(s.sparse.begin(), s.sparse.end() - 1);
  EXPECT_THROW((void)f.backend->score(s.dense, wrong, nullptr), Error);
}

}  // namespace
}  // namespace imars
