// Tests for the baselines: exact NNS oracles, GPU cost-model calibration
// against every published GPU data point, CPU/GPU backend behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baseline/cpu_backend.hpp"
#include "util/error.hpp"
#include "baseline/exact_nns.hpp"
#include "baseline/gpu_model.hpp"
#include "data/movielens.hpp"
#include "recsys/youtube_dnn.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using baseline::CpuBackend;
using baseline::CpuBackendConfig;
using baseline::FilterVariant;
using baseline::GpuModel;
using baseline::GpuModelBackend;
using baseline::GpuNnsKind;
using data::MovieLensConfig;
using data::MovieLensSynth;
using recsys::YoutubeDnn;
using recsys::YoutubeDnnConfig;
using tensor::Matrix;
using tensor::Vector;

// ---------- exact NNS ---------------------------------------------------------

TEST(ExactNns, TopkCosineOrdersByAngle) {
  Matrix items(3, 2, {1.0f, 0.0f,    // 0 degrees to query
                      0.0f, 1.0f,    // 90
                      -1.0f, 0.0f}); // 180
  const Vector q = {1.0f, 0.0f};
  const auto top = baseline::topk_cosine(items, q, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(ExactNns, TopkDotDiffersFromCosineOnMagnitude) {
  Matrix items(2, 2, {10.0f, 0.0f,   // large magnitude, same direction
                      1.0f, 0.1f});
  const Vector q = {1.0f, 0.0f};
  EXPECT_EQ(baseline::topk_dot(items, q, 1)[0], 0u);
  // Cosine ignores magnitude: row 0 is exactly aligned, still wins.
  EXPECT_EQ(baseline::topk_cosine(items, q, 1)[0], 0u);
}

TEST(ExactNns, TopkClampsKAndBreaksTiesByIndex) {
  Matrix items(3, 2, {1.0f, 0.0f, 1.0f, 0.0f, 1.0f, 0.0f});
  const Vector q = {1.0f, 0.0f};
  const auto top = baseline::topk_cosine(items, q, 10);
  EXPECT_EQ(top, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ExactNns, RadiusHammingMatchesDefinition) {
  std::vector<util::BitVec> sigs;
  sigs.push_back(util::BitVec::from_string("0000"));
  sigs.push_back(util::BitVec::from_string("0011"));
  sigs.push_back(util::BitVec::from_string("1111"));
  const auto q = util::BitVec::from_string("0001");
  EXPECT_EQ(baseline::radius_hamming(sigs, q, 1),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(baseline::radius_hamming(sigs, q, 0), std::vector<std::size_t>{});
  EXPECT_EQ(baseline::radius_hamming(sigs, q, 4),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ExactNns, TopkHammingOrdersByDistance) {
  std::vector<util::BitVec> sigs;
  sigs.push_back(util::BitVec::from_string("1111"));  // d=3 to q
  sigs.push_back(util::BitVec::from_string("0001"));  // d=0
  sigs.push_back(util::BitVec::from_string("0011"));  // d=1
  const auto q = util::BitVec::from_string("0001");
  EXPECT_EQ(baseline::topk_hamming(sigs, q, 2),
            (std::vector<std::size_t>{1, 2}));
}

// ---------- GPU model calibration ----------------------------------------------
// Each expectation below is a data point the paper reports; the model must
// reproduce all of them simultaneously (within 2%).

TEST(GpuModel, EtLookupMatchesTableIII) {
  const GpuModel gpu;
  // MovieLens filtering: 6 tables -> 9.27 us / 203.97 uJ.
  EXPECT_NEAR(gpu.et_lookup(6).latency.us(), 9.27, 0.1);
  EXPECT_NEAR(gpu.et_lookup(6).energy.uj(), 203.97, 4.0);
  // MovieLens ranking: 7 tables -> 9.60 us / 211.26 uJ.
  EXPECT_NEAR(gpu.et_lookup(7).latency.us(), 9.60, 0.1);
  EXPECT_NEAR(gpu.et_lookup(7).energy.uj(), 211.26, 4.0);
  // Criteo ranking: 26 tables -> 14.97 us / 329.34 uJ.
  EXPECT_NEAR(gpu.et_lookup(26).latency.us(), 14.97, 0.15);
  EXPECT_NEAR(gpu.et_lookup(26).energy.uj(), 329.34, 7.0);
}

TEST(GpuModel, NnsMatchesSecIVC2) {
  const GpuModel gpu;
  // MovieLens ItET has 3952 items.
  EXPECT_NEAR(gpu.nns(GpuNnsKind::kBruteCosine, 3952).latency.us(), 13.6, 0.3);
  EXPECT_NEAR(gpu.nns(GpuNnsKind::kBruteCosine, 3952).energy.uj(), 340.0, 50.0);
  EXPECT_NEAR(gpu.nns(GpuNnsKind::kLsh256, 3952).latency.us(), 6.97, 0.15);
  EXPECT_NEAR(gpu.nns(GpuNnsKind::kLsh256, 3952).energy.uj(), 150.0, 10.0);
  // FAISS ANN (the Fig. 2 breakdown) is far cheaper than brute cosine.
  EXPECT_LT(gpu.nns(GpuNnsKind::kFaissAnn, 3952).latency.us(), 2.5);
}

TEST(GpuModel, CostsScaleWithSize) {
  const GpuModel gpu;
  EXPECT_LT(gpu.et_lookup(2).latency.value, gpu.et_lookup(20).latency.value);
  EXPECT_LT(gpu.nns(GpuNnsKind::kBruteCosine, 100).latency.value,
            gpu.nns(GpuNnsKind::kBruteCosine, 100000).latency.value);
  EXPECT_LT(gpu.dnn(1, 1000).latency.value, gpu.dnn(5, 1000).latency.value);
}

TEST(GpuModel, EnergyEqualsPowerTimesLatency) {
  const GpuModel gpu;
  const auto c = gpu.et_lookup(10);
  EXPECT_NEAR(c.energy.uj(), c.latency.us() * gpu.calibration().power_w, 1e-6);
}

TEST(GpuModel, EndToEndReproducesPaperQps) {
  // Composition: filtering (ET 6 tables + 3-layer DNN + FAISS NNS) +
  // 20 candidates x (ET 7 tables + 2-layer DNN + pair overhead) + topk.
  const GpuModel gpu;
  double total_us = gpu.et_lookup(6).latency.us() +
                    gpu.dnn(3, 196 * 128 + 128 * 64 + 64 * 32).latency.us() +
                    gpu.nns(GpuNnsKind::kFaissAnn, 3952).latency.us();
  const double rank_per_candidate =
      gpu.et_lookup(7).latency.us() +
      gpu.dnn(2, 260 * 128 + 128).latency.us() +
      gpu.rank_pair_overhead().latency.us();
  total_us += 20 * rank_per_candidate + gpu.topk(20).latency.us();

  const double qps = 1e6 / total_us;
  // Paper: 1311 queries/second on the GTX 1080.
  EXPECT_NEAR(qps, 1311.0, 150.0);
}

// ---------- CPU backend ----------------------------------------------------------

struct TrainedFixture {
  TrainedFixture() {
    MovieLensConfig dcfg;
    dcfg.num_users = 120;
    dcfg.num_items = 100;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 13;
    ds = std::make_unique<MovieLensSynth>(dcfg);

    YoutubeDnnConfig mcfg;
    mcfg.emb_dim = 16;
    mcfg.filter_hidden = {32, 16};
    mcfg.rank_hidden = {16};
    mcfg.negatives = 4;
    mcfg.seed = 17;
    model = std::make_unique<YoutubeDnn>(ds->schema(), mcfg);
    util::Xoshiro256 rng(19);
    for (int e = 0; e < 3; ++e) model->train_filter_epoch(*ds, rng);
  }
  std::unique_ptr<MovieLensSynth> ds;
  std::unique_ptr<YoutubeDnn> model;
};

TEST(CpuBackend, Fp32FilterReturnsRequestedCandidateCount) {
  TrainedFixture f;
  CpuBackendConfig cfg;
  cfg.variant = FilterVariant::kFp32Cosine;
  cfg.candidates = 12;
  CpuBackend backend(*f.model, cfg);
  const auto ctx = f.model->make_context(*f.ds, 0);
  EXPECT_EQ(backend.filter(ctx, nullptr).size(), 12u);
}

TEST(CpuBackend, Int8CosineApproximatesFp32) {
  TrainedFixture f;
  CpuBackendConfig a;
  a.variant = FilterVariant::kFp32Cosine;
  a.candidates = 20;
  CpuBackendConfig b = a;
  b.variant = FilterVariant::kInt8Cosine;
  CpuBackend fa(*f.model, a), fb(*f.model, b);

  // Quantization barely moves the candidate set: expect high overlap.
  double overlap = 0.0;
  const int users = 30;
  for (int u = 0; u < users; ++u) {
    const auto ctx = f.model->make_context(*f.ds, u);
    const auto ca = fa.filter(ctx, nullptr);
    auto cb = fb.filter(ctx, nullptr);
    std::sort(cb.begin(), cb.end());
    int inter = 0;
    for (auto c : ca)
      if (std::binary_search(cb.begin(), cb.end(), c)) ++inter;
    overlap += static_cast<double>(inter) / static_cast<double>(ca.size());
  }
  EXPECT_GT(overlap / users, 0.85);
}

TEST(CpuBackend, LshVariantMatchesBruteForceRadius) {
  TrainedFixture f;
  CpuBackendConfig cfg;
  cfg.variant = FilterVariant::kInt8LshHamming;
  cfg.lsh_bits = 128;
  cfg.lsh_radius = 50;
  CpuBackend backend(*f.model, cfg);

  const auto ctx = f.model->make_context(*f.ds, 5);
  const auto got = backend.filter(ctx, nullptr);

  const auto u = f.model->user_embedding(ctx);
  const auto q = backend.signature_of(u);
  const auto expected =
      baseline::radius_hamming(backend.item_signatures(), q, cfg.lsh_radius);
  EXPECT_EQ(got, expected);
}

TEST(CpuBackend, RankSortsByCtrDescending) {
  TrainedFixture f;
  CpuBackend backend(*f.model, CpuBackendConfig{});
  const auto ctx = f.model->make_context(*f.ds, 2);
  const std::vector<std::size_t> candidates = {1, 5, 9, 13, 17, 21};
  const auto ranked = backend.rank(ctx, candidates, 4, nullptr);
  ASSERT_EQ(ranked.size(), 4u);
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  // Scores equal the float model's CTR.
  for (const auto& r : ranked)
    EXPECT_FLOAT_EQ(r.score, f.model->ctr(ctx, r.item));
}

TEST(CpuBackend, SignatureOfRequiresLshVariant) {
  TrainedFixture f;
  CpuBackend backend(*f.model, CpuBackendConfig{});  // fp32 variant
  EXPECT_THROW((void)backend.signature_of(Vector(16, 0.0f)), Error);
}

// ---------- GPU backend -----------------------------------------------------------

TEST(GpuBackend, FunctionalResultMatchesCpuFp32) {
  TrainedFixture f;
  CpuBackendConfig ccfg;
  ccfg.variant = FilterVariant::kFp32Cosine;
  ccfg.candidates = 20;
  CpuBackend cpu(*f.model, ccfg);

  const GpuModel gpu;
  baseline::GpuBackendConfig gcfg;
  gcfg.candidates = 20;
  GpuModelBackend gbe(*f.model, gpu, gcfg);

  const auto ctx = f.model->make_context(*f.ds, 7);
  EXPECT_EQ(gbe.filter(ctx, nullptr), cpu.filter(ctx, nullptr));
}

TEST(GpuBackend, StatsFollowCalibratedModel) {
  TrainedFixture f;
  const GpuModel gpu;
  GpuModelBackend backend(*f.model, gpu, baseline::GpuBackendConfig{});
  const auto ctx = f.model->make_context(*f.ds, 1);

  recsys::StageStats fs;
  const auto candidates = backend.filter(ctx, &fs);
  // Filtering ET lookup = 6 tables (5 UIETs + ItET).
  EXPECT_NEAR(fs.at(recsys::OpKind::kEtLookup).latency.us(),
              gpu.et_lookup(6).latency.us(), 1e-9);
  EXPECT_GT(fs.at(recsys::OpKind::kDnn).latency.value, 0.0);
  EXPECT_GT(fs.at(recsys::OpKind::kNns).latency.value, 0.0);

  recsys::StageStats rs;
  (void)backend.rank(ctx, candidates, 10, &rs);
  // Ranking ET cost scales with the candidate count (7 tables each).
  EXPECT_NEAR(rs.at(recsys::OpKind::kEtLookup).latency.us(),
              gpu.et_lookup(7).latency.us() *
                  static_cast<double>(candidates.size()),
              1e-6);
  EXPECT_GT(rs.at(recsys::OpKind::kTopK).latency.value, 0.0);
}

}  // namespace
}  // namespace imars
