// Tests for multi-tenant QoS serving: the class-aware QosBatcher edge
// cases (deadline exactly at the close tick, empty class queues, all
// classes starved, single-class bit-equivalence with the PR 2
// DynamicBatcher, weight-0 scavenger gating, preemptive close), weighted
// admission ordering, and the runtime-level determinism grid
// (overlap on/off x open/closed loop x 1/3 classes).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baseline/cpu_backend.hpp"
#include "core/backend_factory.hpp"
#include "data/movielens.hpp"
#include "recsys/youtube_dnn.hpp"
#include "serve/batcher.hpp"
#include "serve/load_gen.hpp"
#include "serve/runtime.hpp"
#include "serve_test_util.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using device::Ns;
using serve::ArrivalProcess;
using serve::Batch;
using serve::DynamicBatcher;
using serve::DynamicBatcherConfig;
using serve::LoadGenConfig;
using serve::LoadGenerator;
using serve::QosBatcher;
using serve::QosBatcherConfig;
using serve::QosClassConfig;
using serve::Request;
using serve::ServingConfig;
using serve::ServingRuntime;

Request make_request(std::size_t id, double t, std::size_t cls = 0) {
  Request r;
  r.id = id;
  r.user = id;
  r.client = id;
  r.qos_class = cls;
  r.enqueue = Ns{t};
  return r;
}

QosClassConfig make_class(const std::string& name, std::size_t max_batch,
                          double max_wait, double weight) {
  QosClassConfig c;
  c.name = name;
  c.max_batch = max_batch;
  c.max_wait = Ns{max_wait};
  c.weight = weight;
  return c;
}

// --- QosBatcher edge cases --------------------------------------------------

TEST(QosBatcher, DeadlineExactlyAtBatchCloseTick) {
  QosBatcherConfig cfg;
  cfg.classes = {make_class("a", 8, 100.0, 1.0)};
  QosBatcher b(cfg);
  b.add(make_request(0, 50.0));
  // One tick before the deadline: nothing fires; exactly at it: the batch
  // closes (>= semantics, same as DynamicBatcher).
  EXPECT_FALSE(b.poll(Ns{149.999}).has_value());
  ASSERT_TRUE(b.deadline().has_value());
  EXPECT_DOUBLE_EQ(b.deadline()->value, 150.0);
  auto batch = b.poll(Ns{150.0});
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 1u);
  EXPECT_DOUBLE_EQ(batch->dispatch.value, 150.0);
}

TEST(QosBatcher, PreemptiveCloseFiresAtDeadlineMinusServiceEstimate) {
  QosBatcherConfig cfg;
  auto cls = make_class("interactive", 8, 1e9, 1.0);
  cls.deadline = Ns{100.0};
  cls.service_estimate = Ns{30.0};
  cfg.classes = {cls};
  QosBatcher b(cfg);
  b.add(make_request(0, 1000.0));
  // max_wait is effectively off; the preemptive trigger closes at
  // enqueue + (deadline - service_estimate) = 1070, exactly at the tick.
  EXPECT_FALSE(b.poll(Ns{1069.0}).has_value());
  ASSERT_TRUE(b.deadline().has_value());
  EXPECT_DOUBLE_EQ(b.deadline()->value, 1070.0);
  EXPECT_TRUE(b.poll(Ns{1070.0}).has_value());

  // An estimate >= the deadline leaves zero slack: the batch closes at the
  // next poll after arrival.
  auto hopeless = cls;
  hopeless.service_estimate = Ns{500.0};
  QosBatcherConfig cfg2;
  cfg2.classes = {hopeless};
  QosBatcher b2(cfg2);
  b2.add(make_request(0, 42.0));
  EXPECT_DOUBLE_EQ(b2.deadline()->value, 42.0);
  EXPECT_TRUE(b2.poll(Ns{42.0}).has_value());
}

TEST(QosBatcher, ExactSlackEqualToMaxWaitClassifiesAsDeadline) {
  // Boundary pin for poll_trigger: when deadline - service_estimate equals
  // max_wait EXACTLY, the SLO clamp did not move the close — it fires at
  // enqueue + max_wait, the same instant the plain deadline trigger would
  // have — so the trigger must read kDeadline. kPreemptive is reserved for
  // closes the clamp actually pulled earlier (strict slack < max_wait).
  auto exact = make_class("exact", 8, 100.0, 1.0);
  exact.deadline = Ns{130.0};
  exact.service_estimate = Ns{30.0};  // slack = 100 == max_wait
  QosBatcherConfig cfg;
  cfg.classes = {exact};
  QosBatcher b(cfg);
  b.add(make_request(0, 10.0));
  ASSERT_TRUE(b.deadline().has_value());
  EXPECT_DOUBLE_EQ(b.deadline()->value, 110.0);
  auto batch = b.poll(Ns{110.0});
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->trigger, serve::CloseTrigger::kDeadline);

  // One tick more of estimate and the clamp genuinely moves the close
  // earlier: the same stream now classifies as preemptive.
  auto clamped = exact;
  clamped.service_estimate = Ns{30.5};  // slack = 99.5 < max_wait
  QosBatcherConfig cfg2;
  cfg2.classes = {clamped};
  QosBatcher b2(cfg2);
  b2.add(make_request(0, 10.0));
  ASSERT_TRUE(b2.deadline().has_value());
  EXPECT_DOUBLE_EQ(b2.deadline()->value, 109.5);
  auto early = b2.poll(Ns{109.5});
  ASSERT_TRUE(early.has_value());
  EXPECT_EQ(early->trigger, serve::CloseTrigger::kPreemptive);
}

TEST(QosBatcher, EmptyClassQueuesAreIgnored) {
  QosBatcherConfig cfg;
  cfg.classes = {make_class("a", 4, 100.0, 1.0),
                 make_class("b", 4, 50.0, 1.0),
                 make_class("c", 4, 200.0, 1.0)};
  QosBatcher b(cfg);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.deadline().has_value());
  EXPECT_FALSE(b.poll(Ns{1e9}).has_value());
  EXPECT_FALSE(b.flush(Ns{1e9}).has_value());

  // Only class 1 has traffic: its trigger is the only one visible.
  b.add(make_request(0, 10.0, 1));
  EXPECT_EQ(b.pending(), 1u);
  EXPECT_EQ(b.pending(0), 0u);
  EXPECT_EQ(b.pending(1), 1u);
  ASSERT_TRUE(b.deadline().has_value());
  EXPECT_DOUBLE_EQ(b.deadline()->value, 60.0);
  auto batch = b.poll(Ns{60.0});
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->qos_class, 1u);
  EXPECT_TRUE(b.empty());
}

TEST(QosBatcher, AllClassesStarvedUntilTriggersFire) {
  QosBatcherConfig cfg;
  cfg.classes = {make_class("a", 4, 100.0, 1.0),
                 make_class("b", 4, 70.0, 1.0)};
  QosBatcher b(cfg);
  b.add(make_request(0, 0.0, 0));
  b.add(make_request(1, 10.0, 1));
  // Both below their size triggers and before their deadlines: starved.
  EXPECT_FALSE(b.poll(Ns{79.0}).has_value());
  ASSERT_TRUE(b.deadline().has_value());
  EXPECT_DOUBLE_EQ(b.deadline()->value, 80.0);  // class b: 10 + 70
  // Triggers then fire in time order.
  auto first = b.poll(Ns{80.0});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->qos_class, 1u);
  EXPECT_FALSE(b.poll(Ns{80.0}).has_value());
  auto second = b.poll(Ns{100.0});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->qos_class, 0u);
}

TEST(QosBatcher, SingleClassMatchesDynamicBatcherBitIdentically) {
  DynamicBatcherConfig dcfg;
  dcfg.max_batch = 3;
  dcfg.max_wait = Ns{120.0};
  DynamicBatcher ref(dcfg);
  QosBatcher qos(QosBatcherConfig::single(dcfg));

  // A seeded random stream driven through both policies with identical
  // poll times must produce bit-identical batch streams; labels on the
  // requests exercise the class-blind single-class path.
  util::Xoshiro256 rng(2024);
  double t = 0.0;
  std::vector<Batch> got_ref, got_qos;
  auto drain = [&](auto& batcher, std::vector<Batch>& out, Ns now) {
    while (auto batch = batcher.poll(now)) out.push_back(*batch);
  };
  for (std::size_t id = 0; id < 200; ++id) {
    t += rng.uniform(0.0, 90.0);
    const auto r = make_request(id, t, id % 5);
    const Ns now{t};
    // Fire any due deadline triggers first, as the runtime's loop does.
    while (true) {
      const auto da = ref.deadline();
      if (!da.has_value() || *da >= now) break;
      drain(ref, got_ref, *da);
      drain(qos, got_qos, *da);
    }
    ref.add(r);
    qos.add(r);
    drain(ref, got_ref, now);
    drain(qos, got_qos, now);
  }
  while (auto batch = ref.flush(Ns{t})) got_ref.push_back(*batch);
  while (auto batch = qos.flush(Ns{t})) got_qos.push_back(*batch);

  ASSERT_EQ(got_ref.size(), got_qos.size());
  for (std::size_t i = 0; i < got_ref.size(); ++i) {
    EXPECT_EQ(got_ref[i].id, got_qos[i].id);
    EXPECT_DOUBLE_EQ(got_ref[i].dispatch.value, got_qos[i].dispatch.value);
    ASSERT_EQ(got_ref[i].size(), got_qos[i].size()) << "batch " << i;
    for (std::size_t j = 0; j < got_ref[i].size(); ++j) {
      EXPECT_EQ(got_ref[i].requests[j].id, got_qos[i].requests[j].id);
      EXPECT_DOUBLE_EQ(got_ref[i].requests[j].enqueue.value,
                       got_qos[i].requests[j].enqueue.value);
    }
  }
}

TEST(QosBatcher, ZeroWeightClassNeverAdmittedWhileOthersPending) {
  QosBatcherConfig cfg;
  cfg.classes = {make_class("scavenger", 2, 10.0, 0.0),
                 make_class("paying", 4, 500.0, 1.0)};
  QosBatcher b(cfg);
  // The scavenger fires its size AND deadline triggers long before the
  // paying class; with the paying class pending it must still wait.
  b.add(make_request(0, 0.0, 0));
  b.add(make_request(1, 1.0, 0));
  b.add(make_request(2, 2.0, 1));
  EXPECT_FALSE(b.poll(Ns{400.0}).has_value());  // scavenger gated
  ASSERT_TRUE(b.deadline().has_value());
  EXPECT_DOUBLE_EQ(b.deadline()->value, 502.0);  // the paying trigger
  // flush() also serves the paying class first.
  auto first = b.flush(Ns{502.0});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->qos_class, 1u);
  // Alone at last, the scavenger is admitted (size trigger long fired).
  auto second = b.poll(Ns{502.0});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->qos_class, 0u);
  EXPECT_EQ(second->size(), 2u);
}

TEST(QosBatcher, WeightedAdmissionSplitsSimultaneousFires) {
  QosBatcherConfig cfg;
  cfg.classes = {make_class("light", 1, 1e9, 1.0),
                 make_class("heavy", 1, 1e9, 3.0)};
  QosBatcher b(cfg);
  // Both classes perpetually size-fired (max_batch 1): admission must
  // interleave closes proportionally to weight via virtual time.
  std::size_t closed[2] = {0, 0};
  for (std::size_t i = 0; i < 40; ++i) {
    b.add(make_request(2 * i, static_cast<double>(i), 0));
    b.add(make_request(2 * i + 1, static_cast<double>(i), 1));
    auto first = b.poll(Ns{static_cast<double>(i)});
    auto second = b.poll(Ns{static_cast<double>(i)});
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    ++closed[first->qos_class];
    ++closed[second->qos_class];
    // Virtual time must favor the heavy class 3:1 in the long run.
    EXPECT_LE(b.virtual_time(1), b.virtual_time(0) + 1.0);
  }
  EXPECT_EQ(closed[0] + closed[1], 80u);
}

TEST(QosBatcher, OutOfOrderArrivalsInsertSorted) {
  QosBatcherConfig cfg;
  cfg.classes = {make_class("a", 8, 100.0, 1.0)};
  QosBatcher b(cfg);
  // A gated closed loop can hand the batcher an arrival slightly in the
  // past; it must slot in by enqueue time, not throw.
  b.add(make_request(0, 100.0));
  b.add(make_request(1, 50.0));
  b.add(make_request(2, 100.0));
  ASSERT_TRUE(b.deadline().has_value());
  EXPECT_DOUBLE_EQ(b.deadline()->value, 150.0);  // oldest is now t=50
  auto batch = b.poll(Ns{150.0});
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->size(), 3u);
  EXPECT_EQ(batch->requests[0].id, 1u);  // sorted by enqueue...
  EXPECT_EQ(batch->requests[1].id, 0u);  // ...stable after equal times
  EXPECT_EQ(batch->requests[2].id, 2u);
}

TEST(QosBatcher, ScavengersNeverBlockEachOther) {
  QosBatcherConfig cfg;
  cfg.classes = {make_class("scav-a", 4, 10.0, 0.0),
                 make_class("scav-b", 4, 10.0, 0.0)};
  QosBatcher b(cfg);
  b.add(make_request(0, 0.0, 0));
  b.add(make_request(1, 1.0, 1));
  // Both scavengers pending: neither gates the other (two weight-0
  // classes must not deadlock the batcher), ties go to the lower index.
  ASSERT_TRUE(b.deadline().has_value());
  EXPECT_DOUBLE_EQ(b.deadline()->value, 10.0);
  auto first = b.flush(Ns{20.0});
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->qos_class, 0u);
  auto second = b.flush(Ns{20.0});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->qos_class, 1u);
  EXPECT_TRUE(b.empty());
}

TEST(QosBatcher, RejectsBadConfigsAndLabels) {
  QosBatcherConfig empty;
  EXPECT_THROW(QosBatcher b(empty), std::runtime_error);

  QosBatcherConfig bad;
  bad.classes = {make_class("a", 0, 10.0, 1.0)};
  EXPECT_THROW(QosBatcher b(bad), std::runtime_error);

  QosBatcherConfig two;
  two.classes = {make_class("a", 4, 10.0, 1.0),
                 make_class("b", 4, 10.0, 1.0)};
  QosBatcher b(two);
  EXPECT_THROW(b.add(make_request(0, 0.0, 2)), std::runtime_error);
  EXPECT_THROW((void)b.pending(7), std::runtime_error);
}

// --- Runtime determinism grid ----------------------------------------------

struct QosServeFixture {
  QosServeFixture() {
    data::MovieLensConfig dcfg;
    dcfg.num_users = 60;
    dcfg.num_items = 90;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 141;
    ds = std::make_unique<data::MovieLensSynth>(dcfg);

    recsys::YoutubeDnnConfig mcfg;
    mcfg.seed = 143;
    model = std::make_unique<recsys::YoutubeDnn>(ds->schema(), mcfg);
    util::Xoshiro256 rng(147);
    model->train_filter_epoch(*ds, rng);
    model->train_rank_epoch(*ds, rng);

    for (std::size_t u = 0; u < ds->num_users(); ++u)
      users.push_back(model->make_context(*ds, u));

    cpu_cfg.candidates = 40;
    factory = core::cpu_backend_factory(*model, cpu_cfg);
  }

  /// Knobs riding along the (classes, open, overlap, gated) grid. The
  /// same opts object drives a phased/speculative pair: `speculate` and
  /// `adaptive` are inert without overlap / by schedule, so both runs see
  /// an identical workload and config.
  struct RunOpts {
    bool speculate = false;
    bool adaptive = false;
    double alpha = 0.2;
    double think = 0.0;          ///< closed-loop client think time (ns)
    double service_floor = 0.0;  ///< claimed floor, applied to every class
    serve::ObserverSink* sink = nullptr;
  };

  serve::ServeReport run(std::size_t classes, bool open, bool overlap,
                         bool gated = false) {
    return run(classes, open, overlap, gated, RunOpts{});
  }

  serve::ServeReport run(std::size_t classes, bool open, bool overlap,
                         bool gated, const RunOpts& opts) {
    ServingConfig cfg;
    cfg.shards = 3;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{300000.0};
    cfg.cache.capacity_rows = 1024;
    cfg.overlap = overlap;
    cfg.max_inflight = 3;
    cfg.speculate = opts.speculate;
    cfg.adaptive.enabled = opts.adaptive;
    cfg.adaptive.alpha = opts.alpha;
    if (classes > 1) {
      auto interactive = make_class("interactive", 2, 300000.0, 2.0);
      interactive.deadline = Ns{150000.0};
      interactive.service_estimate = Ns{20000.0};
      cfg.qos.classes = {interactive, make_class("bulk", 4, 300000.0, 4.0),
                         make_class("scavenger", 4, 300000.0, 0.0)};
      if (gated) cfg.qos.admit_window = Ns{50000.0};
    }
    if (opts.service_floor > 0.0) {
      if (cfg.qos.classes.empty())
        cfg.qos = QosBatcherConfig::single(cfg.batcher);
      for (auto& cls : cfg.qos.classes)
        cls.service_floor = Ns{opts.service_floor};
    }
    ServingRuntime rt(factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    rt.set_observer(opts.sink);
    LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = 40;
    lg.num_users = users.size();
    lg.seed = 171;
    lg.think = Ns{opts.think};
    if (classes > 1) lg.class_mix = {0.2, 0.7, 0.1};
    if (open) {
      lg.arrivals = ArrivalProcess::kOpenPoisson;
      lg.rate_qps = 2.0e5;
    }
    LoadGenerator gen(lg);
    return rt.run(gen, users);
  }

  std::unique_ptr<data::MovieLensSynth> ds;
  std::unique_ptr<recsys::YoutubeDnn> model;
  std::vector<recsys::UserContext> users;
  baseline::CpuBackendConfig cpu_cfg;
  core::BackendFactory factory;
};

TEST(QosRuntime, SingleClassConfigMatchesExplicitSingleTable) {
  QosServeFixture fx;
  for (const bool open : {false, true}) {
    ServingConfig implicit;
    implicit.shards = 2;
    implicit.k = 5;
    implicit.batcher.max_batch = 4;
    implicit.batcher.max_wait = Ns{300000.0};
    implicit.cache.capacity_rows = 512;
    ServingConfig explicit_cfg = implicit;
    explicit_cfg.qos = QosBatcherConfig::single(implicit.batcher);

    auto run_with = [&](const ServingConfig& cfg) {
      ServingRuntime rt(fx.factory, cfg, core::ArchConfig{},
                        device::DeviceProfile::fefet45());
      LoadGenConfig lg;
      lg.clients = 6;
      lg.total_queries = 30;
      lg.num_users = fx.users.size();
      lg.seed = 201;
      if (open) {
        lg.arrivals = ArrivalProcess::kOpenPoisson;
        lg.rate_qps = 1.5e5;
      }
      LoadGenerator gen(lg);
      return rt.run(gen, fx.users);
    };
    serve_test::expect_reports_identical(run_with(implicit),
                                         run_with(explicit_cfg));
  }
}

TEST(QosRuntime, SeedDeterminismAcrossOverlapLoopAndClassGrid) {
  QosServeFixture fx;
  for (const std::size_t classes : {std::size_t{1}, std::size_t{3}}) {
    for (const bool open : {false, true}) {
      // Same seed, same config => bit-identical reports, and the overlap
      // flag must never change hardware-time accounting.
      const auto phased = fx.run(classes, open, /*overlap=*/false);
      const auto phased_again = fx.run(classes, open, /*overlap=*/false);
      const auto overlapped = fx.run(classes, open, /*overlap=*/true);
      serve_test::expect_reports_identical(phased, phased_again);
      serve_test::expect_reports_identical(phased, overlapped);
      ASSERT_EQ(phased.size(), 40u)
          << "classes=" << classes << " open=" << open;
    }
  }
}

TEST(QosRuntime, GatedAdmissionIsSeedDeterministic) {
  QosServeFixture fx;
  for (const bool open : {false, true}) {
    const auto a = fx.run(3, open, /*overlap=*/true, /*gated=*/true);
    const auto b = fx.run(3, open, /*overlap=*/true, /*gated=*/true);
    serve_test::expect_reports_identical(a, b);
    ASSERT_EQ(a.size(), 40u);
    // Per-class accounting covers the whole stream.
    std::size_t class_queries = 0;
    for (const auto& c : a.classes) class_queries += c.queries;
    EXPECT_EQ(class_queries, a.size());
    EXPECT_GT(a.classes[0].device_time.value, 0.0);
    EXPECT_GE(a.fairness_error(), 0.0);
    EXPECT_LE(a.fairness_error(), 1.0);
  }
}

// --- Speculative dispatch windows & adaptive estimates ----------------------

TEST(QosRuntime, SpeculativeDispatchMatchesPhasedAcrossRegimeGrid) {
  QosServeFixture fx;
  // Speculation recovers deferred collection in the completion-dependent
  // regimes (closed loop, gated admission). Reports must stay
  // bit-identical to phased execution across the whole grid — speculation
  // moves host-side waits, never simulated numbers. Think time widens the
  // closed-loop horizon, so both closed cells exercise real windows.
  for (const std::size_t classes : {std::size_t{1}, std::size_t{3}}) {
    for (const bool open : {false, true}) {
      for (const bool gated : {false, true}) {
        if (gated && classes == 1) continue;  // gating needs a class table
        QosServeFixture::RunOpts opts;
        opts.speculate = true;  // inert without overlap
        opts.think = open ? 0.0 : 40000.0;
        const auto phased = fx.run(classes, open, /*overlap=*/false, gated,
                                   opts);
        const auto spec = fx.run(classes, open, /*overlap=*/true, gated,
                                 opts);
        serve_test::expect_reports_identical(phased, spec);
        ASSERT_EQ(spec.size(), 40u)
            << "classes=" << classes << " open=" << open
            << " gated=" << gated;
        // Phased never defers, so its speculative telemetry stays zero.
        EXPECT_EQ(phased.spec.window_proceeds, 0u);
        EXPECT_LE(phased.spec.peak_inflight, 1u);
      }
    }
  }
}

TEST(QosRuntime, ClosedLoopSpeculationActuallyOverlapsBatches) {
  QosServeFixture fx;
  // 8 clients arrive at t=0 with max_batch 4: the second size-triggered
  // batch closes while the first is still provably in flight (the merge
  // floor alone keeps the horizon open), so speculation must stack at
  // least two uncollected batches — the regime the phased closed loop
  // could never overlap.
  QosServeFixture::RunOpts opts;
  opts.speculate = true;
  opts.think = 40000.0;
  const auto report = fx.run(3, /*open=*/false, /*overlap=*/true,
                             /*gated=*/false, opts);
  EXPECT_GT(report.spec.window_proceeds, 0u);
  EXPECT_GE(report.spec.peak_inflight, 2u);
}

TEST(QosRuntime, SpeculationIsInertWithoutOverlap) {
  QosServeFixture fx;
  QosServeFixture::RunOpts off;
  QosServeFixture::RunOpts on;
  on.speculate = true;
  const auto base = fx.run(3, /*open=*/false, /*overlap=*/false,
                           /*gated=*/false, off);
  const auto spec = fx.run(3, /*open=*/false, /*overlap=*/false,
                           /*gated=*/false, on);
  serve_test::expect_reports_identical(base, spec);
  EXPECT_EQ(spec.spec.window_proceeds, 0u);
  EXPECT_EQ(spec.spec.window_stalls, 0u);
}

TEST(QosRuntime, AdaptiveReportsAreOverlapInvariant) {
  QosServeFixture fx;
  // Adaptive commits ride the fixed hold-back schedule, so the drifting
  // estimates steer phased and speculative execution identically: the
  // reports (which now both follow the adapted estimates) stay
  // bit-identical, and the commit counts agree exactly.
  for (const bool open : {false, true}) {
    QosServeFixture::RunOpts opts;
    opts.adaptive = true;
    opts.speculate = true;
    opts.think = open ? 0.0 : 40000.0;
    const auto phased = fx.run(3, open, /*overlap=*/false, /*gated=*/false,
                               opts);
    const auto overlapped = fx.run(3, open, /*overlap=*/true,
                                   /*gated=*/false, opts);
    serve_test::expect_reports_identical(phased, overlapped);
    EXPECT_GT(phased.spec.estimate_commits, 0u);
    EXPECT_EQ(phased.spec.estimate_commits, overlapped.spec.estimate_commits);
  }
}

namespace {
struct CounterRecorder final : serve::ObserverSink {
  std::vector<std::pair<std::string, double>> counters;
  void on_counter(std::string_view name, Ns, double value) override {
    counters.emplace_back(std::string(name), value);
  }
};
}  // namespace

TEST(QosRuntime, AdaptiveEwmaTracksObservedServiceExactly) {
  QosServeFixture fx;
  // With alpha = 1 the EWMA degenerates to "estimate := last committed
  // observation", so every committed qos.est.<class> counter must equal
  // the observed service time (dispatch -> last member complete) of the
  // corresponding batch — batches commit in submission order (== batch id
  // order when ungated), held back by max_inflight (3 in this fixture).
  CounterRecorder rec;
  QosServeFixture::RunOpts opts;
  opts.adaptive = true;
  opts.alpha = 1.0;
  opts.sink = &rec;
  const auto report = fx.run(3, /*open=*/true, /*overlap=*/false,
                             /*gated=*/false, opts);
  // Per-batch observed service and class, keyed by batch id.
  std::map<std::size_t, double> service;
  std::map<std::size_t, std::string> cls_of;
  for (const auto& q : report.queries) {
    const double s = (q.complete - q.dispatch).value;
    auto [it, fresh] = service.try_emplace(q.batch, s);
    if (!fresh) it->second = std::max(it->second, s);
    cls_of[q.batch] = report.classes[q.qos_class].name;
  }
  std::vector<std::pair<std::string, double>> got;
  for (const auto& [name, value] : rec.counters)
    if (name.rfind("qos.est.", 0) == 0) got.emplace_back(name, value);
  ASSERT_EQ(service.size(), report.batches);
  ASSERT_GT(report.spec.estimate_commits, 0u);
  ASSERT_EQ(got.size(), report.spec.estimate_commits);
  // Submissions 0..N-1 commit batches 0..N-2-max_inflight, in order.
  ASSERT_EQ(got.size(), report.batches - 1 - 3);
  for (std::size_t b = 0; b < got.size(); ++b) {
    EXPECT_EQ(got[b].first, "qos.est." + cls_of[b]) << "commit " << b;
    EXPECT_DOUBLE_EQ(got[b].second, service[b]) << "commit " << b;
  }
}

TEST(QosRuntime, ServiceFloorIsValidatedAgainstCompletions) {
  QosServeFixture fx;
  // A claimed floor far above any real batch service time voids every
  // speculative proof — the run must abort, not silently diverge.
  QosServeFixture::RunOpts bogus;
  bogus.service_floor = 1.0e12;
  EXPECT_THROW(
      fx.run(3, /*open=*/false, /*overlap=*/false, /*gated=*/false, bogus),
      std::runtime_error);
  // A genuinely provable (tiny) floor changes nothing: same report as the
  // floorless run, with or without speculation.
  QosServeFixture::RunOpts tiny;
  tiny.service_floor = 1.0;
  tiny.speculate = true;
  const auto base =
      fx.run(3, /*open=*/false, /*overlap=*/false, /*gated=*/false);
  const auto floored = fx.run(3, /*open=*/false, /*overlap=*/true,
                              /*gated=*/false, tiny);
  serve_test::expect_reports_identical(base, floored);
}

TEST(QosBatcher, AdaptiveSettersFeedTriggerAndAdmission) {
  // set_service_estimate moves the preemptive trigger of the CURRENT
  // queue contents (trigger_time recomputes per call), and
  // set_request_cost rescales subsequent admission accounting.
  auto cls = make_class("interactive", 8, 1e9, 1.0);
  cls.deadline = Ns{100.0};
  cls.service_estimate = Ns{30.0};
  QosBatcherConfig cfg;
  cfg.classes = {cls};
  QosBatcher b(cfg);
  b.add(make_request(0, 1000.0));
  ASSERT_TRUE(b.deadline().has_value());
  EXPECT_DOUBLE_EQ(b.deadline()->value, 1070.0);
  b.set_service_estimate(0, Ns{60.0});
  EXPECT_DOUBLE_EQ(b.deadline()->value, 1040.0);
  ASSERT_TRUE(b.poll(Ns{1040.0}).has_value());
  EXPECT_DOUBLE_EQ(b.virtual_time(0), 1.0);  // request_cost 1 x 1 request
  b.set_request_cost(0, 4.0);
  b.add(make_request(1, 2000.0));
  ASSERT_TRUE(b.flush(Ns{2000.0}).has_value());
  EXPECT_DOUBLE_EQ(b.virtual_time(0), 5.0);  // + 4.0 under the new cost
  // Setter validation mirrors the constructor's.
  EXPECT_THROW(b.set_service_estimate(1, Ns{1.0}), std::runtime_error);
  EXPECT_THROW(b.set_service_estimate(0, Ns{-1.0}), std::runtime_error);
  EXPECT_THROW(b.set_request_cost(0, 0.0), std::runtime_error);
}

TEST(QosRuntime, StaleScavengerTriggerNeverBackdatesDispatch) {
  QosServeFixture fx;
  ServingConfig cfg;
  cfg.shards = 2;
  cfg.k = 5;
  auto paying = make_class("paying", 2, 100000.0, 1.0);
  auto scavenger = make_class("scavenger", 2, 10000.0, 0.0);
  cfg.qos.classes = {paying, scavenger};
  ServingRuntime rt(fx.factory, cfg, core::ArchConfig{},
                    device::DeviceProfile::fefet45());

  // The scavenger's deadline trigger fires at 20 us but stays suppressed
  // behind paying traffic until 250 us; by then its queue holds requests
  // enqueued long after the stale trigger time. The close must be stamped
  // at the newest arrival, never back at the stale trigger.
  std::vector<Request> trace;
  std::size_t id = 0;
  auto at = [&](double us, std::size_t cls) {
    Request r = make_request(id, us * 1000.0, cls);
    r.user = id % fx.users.size();
    ++id;
    trace.push_back(r);
  };
  at(10.0, 1);
  at(30.0, 0);
  at(50.0, 0);  // paying batch closes (size trigger)
  at(100.0, 1);
  at(150.0, 0);
  at(200.0, 1);
  at(250.0, 0);  // paying batch closes; queue drained
  at(1000.0, 0);  // keeps an arrival pending when the stale trigger fires

  LoadGenConfig lg;
  lg.num_users = fx.users.size();
  lg.arrivals = ArrivalProcess::kTrace;
  lg.trace = trace;
  LoadGenerator gen(lg);
  const auto report = rt.run(gen, fx.users);
  ASSERT_EQ(report.size(), trace.size());
  EXPECT_EQ(report.classes[1].queries, 3u);
  for (const auto& q : report.queries) {
    EXPECT_LE(q.enqueue.value, q.dispatch.value) << "query " << q.id;
    EXPECT_LT(q.dispatch.value, q.complete.value);
  }
}

TEST(QosRuntime, PerClassReportAccountingIsConsistent) {
  QosServeFixture fx;
  const auto report = fx.run(3, /*open=*/true, /*overlap=*/false);
  ASSERT_EQ(report.classes.size(), 3u);
  std::size_t queries = 0, batches = 0;
  double device = 0.0, share = 0.0;
  for (std::size_t c = 0; c < report.classes.size(); ++c) {
    queries += report.classes[c].queries;
    batches += report.classes[c].batches;
    device += report.classes[c].device_time.value;
    share += report.device_share(c);
    // Percentiles filter by label and never throw, even on a class that
    // received little or no traffic.
    EXPECT_GE(report.class_p99_latency_ns(c),
              report.class_p50_latency_ns(c));
  }
  EXPECT_EQ(queries, report.size());
  EXPECT_EQ(batches, report.batches);
  EXPECT_GT(device, 0.0);
  EXPECT_NEAR(share, 1.0, 1e-9);
  // Every query's label is a configured class and batches are class-pure.
  for (const auto& q : report.queries) EXPECT_LT(q.qos_class, 3u);
}

}  // namespace
}  // namespace imars
