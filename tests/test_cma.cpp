// Tests for the CMA functional model: RAM read/write, TCAM threshold search
// (vs brute-force Hamming oracle), GPCiM in-memory addition, mode rules,
// ternary cells, energy accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "cma/cma.hpp"
#include "util/error.hpp"
#include "util/quant.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using cma::Cma;
using cma::Mode;
using device::Component;
using device::DeviceProfile;
using device::EnergyLedger;
using util::BitVec;

struct Fixture {
  DeviceProfile profile = DeviceProfile::fefet45();
  EnergyLedger ledger;
  Cma array{profile, &ledger};
};

BitVec random_row(std::size_t bits, util::Xoshiro256& rng, double p = 0.5) {
  BitVec v(bits);
  for (std::size_t i = 0; i < bits; ++i) v.set(i, rng.bernoulli(p));
  return v;
}

TEST(Cma, GeometryFromProfile) {
  Fixture f;
  EXPECT_EQ(f.array.rows(), 256u);
  EXPECT_EQ(f.array.cols(), 256u);
  EXPECT_EQ(f.array.mode(), Mode::kRam);
}

TEST(Cma, WriteReadRoundTrip) {
  Fixture f;
  util::Xoshiro256 rng(1);
  const BitVec row = random_row(256, rng);
  f.array.write_row(7, row);
  EXPECT_TRUE(f.array.row_valid(7));
  EXPECT_EQ(f.array.read_row(7), row);
}

TEST(Cma, ReadUnwrittenRowThrows) {
  Fixture f;
  EXPECT_THROW(f.array.read_row(0), Error);
  EXPECT_FALSE(f.array.row_valid(0));
}

TEST(Cma, RowIndexOutOfRangeThrows) {
  Fixture f;
  EXPECT_THROW(f.array.write_row(256, BitVec(256)), Error);
}

TEST(Cma, WriteWidthMismatchThrows) {
  Fixture f;
  EXPECT_THROW(f.array.write_row(0, BitVec(128)), Error);
}

TEST(Cma, Int8LaneRoundTrip) {
  Fixture f;
  std::vector<std::int8_t> lanes(32);
  for (int i = 0; i < 32; ++i) lanes[i] = static_cast<std::int8_t>(i * 7 - 100);
  f.array.write_row_i8(3, lanes);
  EXPECT_EQ(f.array.read_row_i8(3), lanes);
}

TEST(Cma, ModeEnforcement) {
  Fixture f;
  f.array.write_row(0, BitVec(256));
  f.array.set_mode(Mode::kTcam);
  EXPECT_THROW(f.array.read_row(0), Error);
  EXPECT_THROW(f.array.write_row(1, BitVec(256)), Error);
  EXPECT_THROW(f.array.add_rows(2, 0, 0), Error);

  f.array.set_mode(Mode::kGpcim);
  EXPECT_THROW((void)f.array.search(BitVec(256), 0), Error);

  f.array.set_mode(Mode::kRam);
  EXPECT_THROW((void)f.array.search(BitVec(256), 0), Error);
}

TEST(Cma, ModeSwitchCountsAndCharges) {
  Fixture f;
  const auto before = f.ledger.energy(Component::kController).value;
  f.array.set_mode(Mode::kTcam);
  f.array.set_mode(Mode::kTcam);  // no-op
  f.array.set_mode(Mode::kRam);
  EXPECT_EQ(f.array.mode_switches(), 2u);
  EXPECT_GT(f.ledger.energy(Component::kController).value, before);
}

TEST(Cma, LatenciesComeFromProfile) {
  Fixture f;
  const auto wl = f.array.write_row(0, BitVec(256));
  EXPECT_DOUBLE_EQ(wl.value, f.profile.cma_write.latency.value);
  device::Ns rl{0.0};
  (void)f.array.read_row(0, &rl);
  EXPECT_DOUBLE_EQ(rl.value, f.profile.cma_read.latency.value);
}

TEST(Cma, EnergyAccountingPerOp) {
  Fixture f;
  f.array.write_row(0, BitVec(256));
  f.array.write_row(1, BitVec(256));
  (void)f.array.read_row(0);
  EXPECT_DOUBLE_EQ(f.ledger.energy(Component::kCmaRam).value,
                   2 * 49.1 + 3.2);
  EXPECT_EQ(f.ledger.ops(Component::kCmaRam), 3u);
}

// ---------- TCAM search -----------------------------------------------------

TEST(Cma, ExactMatchSearch) {
  Fixture f;
  util::Xoshiro256 rng(2);
  const BitVec a = random_row(256, rng);
  const BitVec b = random_row(256, rng);
  f.array.write_row(10, a);
  f.array.write_row(20, b);
  f.array.set_mode(Mode::kTcam);

  const auto r = f.array.search(a, 0);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0], 10u);
  EXPECT_TRUE(r.matchlines.get(10));
  EXPECT_FALSE(r.matchlines.get(20));
  EXPECT_EQ(Cma::first_match(r), std::optional<std::size_t>(10));
}

TEST(Cma, NoMatchGivesEmpty) {
  Fixture f;
  f.array.write_row(0, BitVec::from_string(std::string(256, '1')));
  f.array.set_mode(Mode::kTcam);
  const auto r = f.array.search(BitVec(256), 10);  // distance 256 > 10
  EXPECT_TRUE(r.matches.empty());
  EXPECT_EQ(Cma::first_match(r), std::nullopt);
}

TEST(Cma, UnwrittenRowsNeverMatch) {
  Fixture f;
  f.array.set_mode(Mode::kTcam);
  const auto r = f.array.search(BitVec(256), 256);  // matches everything valid
  EXPECT_TRUE(r.matches.empty());
}

// Property: TCAM threshold search == brute-force Hamming filter, for random
// contents, random queries and every threshold in a sweep.
class CmaSearchProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CmaSearchProperty, MatchesBruteForce) {
  const std::size_t threshold = GetParam();
  Fixture f;
  util::Xoshiro256 rng(1000 + threshold);

  std::vector<BitVec> rows;
  for (std::size_t r = 0; r < 64; ++r) {
    rows.push_back(random_row(256, rng));
    f.array.write_row(r, rows.back());
  }
  f.array.set_mode(Mode::kTcam);

  // Query biased toward row 0 so small thresholds sometimes hit.
  BitVec q = rows[0];
  for (std::size_t i = 0; i < threshold; ++i)
    q.flip(rng.below(256));

  const auto result = f.array.search(q, threshold);
  std::vector<std::size_t> expected;
  for (std::size_t r = 0; r < rows.size(); ++r)
    if (rows[r].hamming(q) <= threshold) expected.push_back(r);
  EXPECT_EQ(result.matches, expected);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CmaSearchProperty,
                         ::testing::Values(0, 1, 4, 16, 64, 100, 128, 200,
                                           256));

TEST(Cma, TernaryDontCareNeverMismatches) {
  Fixture f;
  const BitVec stored = BitVec::from_string("1010" + std::string(252, '0'));
  f.array.write_row(0, stored);
  // Mark the first four cells as X.
  for (std::size_t c = 0; c < 4; ++c) f.array.set_dont_care(0, c, true);
  f.array.set_mode(Mode::kTcam);

  // Query differs in all four X positions: still an exact (distance-0) match.
  const BitVec q = BitVec::from_string("0101" + std::string(252, '0'));
  const auto r = f.array.search(q, 0);
  ASSERT_EQ(r.matches.size(), 1u);

  // Restoring binary behaviour makes it mismatch again.
  f.array.set_mode(Mode::kRam);
  for (std::size_t c = 0; c < 4; ++c) f.array.set_dont_care(0, c, false);
  f.array.set_mode(Mode::kTcam);
  EXPECT_TRUE(f.array.search(q, 3).matches.empty());
}

TEST(Cma, SearchChargesOneArrayOp) {
  Fixture f;
  f.array.write_row(0, BitVec(256));
  f.array.set_mode(Mode::kTcam);
  const auto before = f.ledger.ops(Component::kCmaSearch);
  (void)f.array.search(BitVec(256), 0);
  EXPECT_EQ(f.ledger.ops(Component::kCmaSearch), before + 1);
  EXPECT_DOUBLE_EQ(f.ledger.energy(Component::kCmaSearch).value, 13.8);
}

// ---------- GPCiM ------------------------------------------------------------

TEST(Cma, AddRowsLaneWise) {
  Fixture f;
  std::vector<std::int8_t> a(32), b(32);
  for (int i = 0; i < 32; ++i) {
    a[i] = static_cast<std::int8_t>(i - 16);
    b[i] = static_cast<std::int8_t>(2 * i - 20);
  }
  f.array.write_row_i8(0, a);
  f.array.write_row_i8(1, b);
  f.array.set_mode(Mode::kGpcim);
  f.array.add_rows(2, 0, 1);
  f.array.set_mode(Mode::kRam);
  const auto sum = f.array.read_row_i8(2);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(sum[i], util::sat_add_i8(a[i], b[i])) << "lane " << i;
}

TEST(Cma, AddRowsSaturates) {
  Fixture f;
  std::vector<std::int8_t> big(32, 100);
  f.array.write_row_i8(0, big);
  f.array.write_row_i8(1, big);
  f.array.set_mode(Mode::kGpcim);
  f.array.add_rows(2, 0, 1);
  f.array.set_mode(Mode::kRam);
  for (auto v : f.array.read_row_i8(2)) EXPECT_EQ(v, 127);
}

TEST(Cma, AddRowsRequiresWrittenSources) {
  Fixture f;
  f.array.write_row_i8(0, std::vector<std::int8_t>(32, 1));
  f.array.set_mode(Mode::kGpcim);
  EXPECT_THROW(f.array.add_rows(2, 0, 1), Error);
}

TEST(Cma, AccumulateSumsIntoWideLanes) {
  Fixture f;
  util::Xoshiro256 rng(3);
  std::vector<std::vector<std::int8_t>> rows;
  std::vector<std::int32_t> expected(32, 0);
  for (std::size_t r = 0; r < 10; ++r) {
    std::vector<std::int8_t> lanes(32);
    for (auto& v : lanes)
      v = static_cast<std::int8_t>(static_cast<int>(rng.below(255)) - 127);
    rows.push_back(lanes);
    f.array.write_row_i8(r, lanes);
    for (int c = 0; c < 32; ++c) expected[c] += lanes[c];
  }
  f.array.set_mode(Mode::kGpcim);
  std::vector<std::int32_t> acc(32, 0);
  for (std::size_t r = 0; r < 10; ++r) f.array.accumulate(r, acc);
  EXPECT_EQ(acc, expected);
  // 10 in-memory adds charged.
  EXPECT_EQ(f.ledger.ops(Component::kCmaAdd), 10u);
}

TEST(Cma, PeekDoesNotCharge) {
  Fixture f;
  f.array.write_row_i8(0, std::vector<std::int8_t>(32, 5));
  const auto before = f.ledger.total().value;
  (void)f.array.peek_row(0);
  (void)f.array.peek_row_i8(0);
  EXPECT_DOUBLE_EQ(f.ledger.total().value, before);
}

}  // namespace
}  // namespace imars
