// Tests for the synthetic dataset generators: schema shape (Table I),
// determinism, statistical properties of the ground truth.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/criteo.hpp"
#include "data/movielens.hpp"
#include "data/zipf.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace imars {
namespace {

using data::CriteoConfig;
using data::CriteoSynth;
using data::MovieLensConfig;
using data::MovieLensSynth;
using data::StageUse;
using data::ZipfSampler;

MovieLensConfig small_ml() {
  MovieLensConfig cfg;
  cfg.num_users = 200;
  cfg.num_items = 150;
  cfg.history_min = 3;
  cfg.history_max = 12;
  cfg.seed = 7;
  return cfg;
}

// ---------- Zipf -------------------------------------------------------------

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler z(100, 1.1);
  double sum = 0.0;
  for (std::size_t k = 0; k < 100; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfIsDecreasing) {
  ZipfSampler z(50, 1.0);
  for (std::size_t k = 1; k < 50; ++k) EXPECT_LE(z.pmf(k), z.pmf(k - 1));
}

TEST(Zipf, ZeroExponentIsUniform) {
  ZipfSampler z(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(z.pmf(k), 0.1, 1e-9);
}

TEST(Zipf, EmpiricalFrequencyTracksPmf) {
  ZipfSampler z(20, 1.2);
  util::Xoshiro256 rng(3);
  std::vector<double> counts(20, 0.0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[z.sample(rng)] += 1.0;
  for (std::size_t k = 0; k < 20; ++k)
    EXPECT_NEAR(counts[k] / n, z.pmf(k), 0.01) << "k=" << k;
}

TEST(Zipf, RejectsDegenerate) {
  EXPECT_THROW(ZipfSampler(0, 1.0), Error);
  EXPECT_THROW(ZipfSampler(10, -0.1), Error);
}

// ---------- MovieLens ----------------------------------------------------------

TEST(MovieLens, DefaultSchemaMatchesTableI) {
  // Cheap: schema derives from config without generating users.
  MovieLensConfig cfg = small_ml();
  cfg.num_users = 6040;
  cfg.num_items = 3952;
  const MovieLensSynth ds(cfg);
  const auto& s = ds.schema();

  // Table I: 5 filtering UIETs, 6 ranking UIETs, 5 shared, 1 ItET.
  EXPECT_EQ(s.uiet_count_for(/*filtering=*/true), 5u);
  EXPECT_EQ(s.uiet_count_for(/*filtering=*/false), 6u);
  EXPECT_EQ(s.uiet_shared_count(), 5u);
  EXPECT_TRUE(s.has_item_table);
  EXPECT_EQ(s.item_count, 3952u);
  EXPECT_EQ(s.embedding_dim, 32u);

  // Paper text: ET row counts span 3 to 6040 entries.
  EXPECT_EQ(s.min_table_rows(), 3u);
  EXPECT_EQ(s.max_table_rows(), 6040u);
}

TEST(MovieLens, DeterministicAcrossInstances) {
  const MovieLensSynth a(small_ml());
  const MovieLensSynth b(small_ml());
  for (std::size_t u = 0; u < a.num_users(); u += 17) {
    EXPECT_EQ(a.user(u).sparse, b.user(u).sparse);
    EXPECT_EQ(a.user(u).history, b.user(u).history);
    EXPECT_EQ(a.user(u).heldout, b.user(u).heldout);
  }
}

TEST(MovieLens, SeedChangesData) {
  MovieLensConfig cfg2 = small_ml();
  cfg2.seed = 8;
  const MovieLensSynth a(small_ml());
  const MovieLensSynth b(cfg2);
  bool any_diff = false;
  for (std::size_t u = 0; u < a.num_users() && !any_diff; ++u)
    any_diff = a.user(u).history != b.user(u).history;
  EXPECT_TRUE(any_diff);
}

TEST(MovieLens, HistoryBoundsAndValidity) {
  const MovieLensSynth ds(small_ml());
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    const auto& rec = ds.user(u);
    // heldout was popped off the history.
    EXPECT_GE(rec.history.size() + 1, small_ml().history_min);
    EXPECT_LE(rec.history.size() + 1, small_ml().history_max);
    for (auto i : rec.history) EXPECT_LT(i, ds.num_items());
    EXPECT_LT(rec.heldout, ds.num_items());
    // No duplicates in history.
    const std::set<std::size_t> uniq(rec.history.begin(), rec.history.end());
    EXPECT_EQ(uniq.size(), rec.history.size());
  }
}

TEST(MovieLens, SparseFeaturesWithinCardinality) {
  const MovieLensSynth ds(small_ml());
  const auto& schema = ds.schema();
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    const auto& rec = ds.user(u);
    ASSERT_EQ(rec.sparse.size(), schema.user_item.size());
    for (std::size_t f = 0; f < rec.sparse.size(); ++f)
      EXPECT_LT(rec.sparse[f], schema.user_item[f].cardinality) << "f=" << f;
  }
}

TEST(MovieLens, UserIdFeatureIsIdentity) {
  const MovieLensSynth ds(small_ml());
  for (std::size_t u = 0; u < ds.num_users(); u += 7)
    EXPECT_EQ(ds.user(u).sparse[4], u);  // schema index 4 = user_id
}

TEST(MovieLens, HistoryItemsHaveHigherAffinityThanRandom) {
  const MovieLensSynth ds(small_ml());
  util::RunningStats hist_aff, rand_aff;
  util::Xoshiro256 rng(9);
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    for (auto i : ds.user(u).history) hist_aff.add(ds.affinity(u, i));
    for (int r = 0; r < 4; ++r)
      rand_aff.add(ds.affinity(u, rng.below(ds.num_items())));
  }
  // Watched items were accepted via sigmoid(affinity): mean must be higher.
  EXPECT_GT(hist_aff.mean(), rand_aff.mean() + 0.2);
}

TEST(MovieLens, PopularityIsZipfShaped) {
  const MovieLensSynth ds(small_ml());
  EXPECT_GT(ds.item_popularity(0), ds.item_popularity(10));
  EXPECT_GT(ds.item_popularity(10), ds.item_popularity(100));
}

TEST(MovieLens, DenseFeaturesFiniteAndSized) {
  const MovieLensSynth ds(small_ml());
  for (std::size_t u = 0; u < ds.num_users(); u += 11) {
    const auto d = ds.dense_features(u);
    ASSERT_EQ(d.size(), MovieLensSynth::kDenseDim);
    for (float x : d) EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(MovieLens, RejectsDegenerateConfig) {
  MovieLensConfig bad = small_ml();
  bad.history_min = 0;
  EXPECT_THROW(MovieLensSynth{bad}, Error);
  MovieLensConfig bad2 = small_ml();
  bad2.num_items = bad2.history_max;  // catalogue too small
  EXPECT_THROW(MovieLensSynth{bad2}, Error);
}

// ---------- Criteo ---------------------------------------------------------------

CriteoConfig small_criteo() {
  CriteoConfig cfg;
  cfg.num_samples = 3000;
  cfg.seed = 11;
  return cfg;
}

TEST(Criteo, SchemaMatchesTableI) {
  const CriteoSynth ds(small_criteo());
  const auto& s = ds.schema();
  EXPECT_EQ(s.dense_dim, 13u);                      // 13 dense features
  EXPECT_EQ(s.user_item.size(), 26u);               // 26 categorical features
  EXPECT_FALSE(s.has_item_table);                   // ranking-only
  EXPECT_EQ(s.max_table_rows(), 30000u);            // Table I cap
  for (const auto& f : s.user_item)
    EXPECT_EQ(f.use, StageUse::kRankingOnly);
}

TEST(Criteo, SamplesAreWellFormed) {
  const CriteoSynth ds(small_criteo());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto& s = ds.sample(i);
    ASSERT_EQ(s.dense.size(), CriteoSynth::kDenseDim);
    ASSERT_EQ(s.sparse.size(), CriteoSynth::kSparseCount);
    for (std::size_t f = 0; f < s.sparse.size(); ++f)
      EXPECT_LT(s.sparse[f], ds.cardinality(f));
    for (float d : s.dense) {
      EXPECT_TRUE(std::isfinite(d));
      EXPECT_GE(d, 0.0f);  // log1p(softplus) is non-negative
    }
    EXPECT_TRUE(s.label == 0 || s.label == 1);
  }
}

TEST(Criteo, Deterministic) {
  const CriteoSynth a(small_criteo());
  const CriteoSynth b(small_criteo());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a.sample(i).sparse, b.sample(i).sparse);
    EXPECT_EQ(a.sample(i).label, b.sample(i).label);
  }
}

TEST(Criteo, MarginalCtrNearBase) {
  CriteoConfig cfg = small_criteo();
  cfg.num_samples = 20000;
  cfg.base_ctr = 0.25;
  const CriteoSynth ds(cfg);
  double clicks = 0.0;
  for (std::size_t i = 0; i < ds.size(); ++i) clicks += ds.sample(i).label;
  EXPECT_NEAR(clicks / static_cast<double>(ds.size()), 0.25, 0.03);
}

TEST(Criteo, LabelsCorrelateWithTrueCtr) {
  const CriteoSynth ds(small_criteo());
  std::vector<int> labels;
  std::vector<double> scores;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    labels.push_back(ds.sample(i).label);
    scores.push_back(ds.true_ctr(ds.sample(i)));
  }
  // The oracle score must separate clicks from non-clicks.
  EXPECT_GT(util::auc(labels, scores), 0.65);
}

TEST(Criteo, ZipfpopularIndicesDominate) {
  const CriteoSynth ds(small_criteo());
  // For the first (1460-ary) feature, index 0 must be the most frequent.
  std::vector<std::size_t> counts(ds.cardinality(0), 0);
  for (std::size_t i = 0; i < ds.size(); ++i)
    counts[ds.sample(i).sparse[0]]++;
  const auto max_it = std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(std::distance(counts.begin(), max_it), 0);
}

TEST(Criteo, RejectsBadConfig) {
  CriteoConfig bad = small_criteo();
  bad.num_samples = 0;
  EXPECT_THROW(CriteoSynth{bad}, Error);
  CriteoConfig bad2 = small_criteo();
  bad2.base_ctr = 1.5;
  EXPECT_THROW(CriteoSynth{bad2}, Error);
}

}  // namespace
}  // namespace imars
