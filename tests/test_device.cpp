// Tests for the device layer: Table II values, unit arithmetic, ledger.
#include <gtest/gtest.h>

#include "device/ledger.hpp"
#include "device/profile.hpp"
#include "device/units.hpp"
#include "util/error.hpp"

namespace imars {
namespace {

using device::Component;
using device::DeviceProfile;
using device::EnergyLedger;
using device::Ns;
using device::Pj;

TEST(Units, ArithmeticAndComparison) {
  const Ns a{2.0}, b{3.0};
  EXPECT_EQ((a + b).value, 5.0);
  EXPECT_EQ((b - a).value, 1.0);
  EXPECT_EQ((a * 2.0).value, 4.0);
  EXPECT_EQ((2.0 * a).value, 4.0);
  EXPECT_EQ((b / 3.0).value, 1.0);
  EXPECT_EQ(b / a, 1.5);
  EXPECT_LT(a, b);
  EXPECT_EQ(device::max(a, b), b);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(Ns{1500.0}.us(), 1.5);
  EXPECT_DOUBLE_EQ(device::from_us(2.0).value, 2000.0);
  EXPECT_DOUBLE_EQ(Pj{5e6}.uj(), 5.0);
  EXPECT_DOUBLE_EQ(device::from_uj(3.0).value, 3e6);
  EXPECT_DOUBLE_EQ(device::from_mj(1.0).value, 1e9);
}

TEST(Profile, Fefet45MatchesTableII) {
  const DeviceProfile p = DeviceProfile::fefet45();
  // Paper Table II, verbatim.
  EXPECT_DOUBLE_EQ(p.cma_write.energy.value, 49.1);
  EXPECT_DOUBLE_EQ(p.cma_write.latency.value, 10.0);
  EXPECT_DOUBLE_EQ(p.cma_read.energy.value, 3.2);
  EXPECT_DOUBLE_EQ(p.cma_read.latency.value, 0.3);
  EXPECT_DOUBLE_EQ(p.cma_add.energy.value, 108.0);
  EXPECT_DOUBLE_EQ(p.cma_add.latency.value, 8.1);
  EXPECT_DOUBLE_EQ(p.cma_search.energy.value, 13.8);
  EXPECT_DOUBLE_EQ(p.cma_search.latency.value, 0.2);
  EXPECT_DOUBLE_EQ(p.intra_mat_add.energy.value, 137.0);
  EXPECT_DOUBLE_EQ(p.intra_mat_add.latency.value, 14.7);
  EXPECT_DOUBLE_EQ(p.intra_bank_add.energy.value, 956.0);
  EXPECT_DOUBLE_EQ(p.intra_bank_add.latency.value, 44.2);
  EXPECT_DOUBLE_EQ(p.xbar_matmul.energy.value, 13.8);
  EXPECT_DOUBLE_EQ(p.xbar_matmul.latency.value, 225.0);
  EXPECT_EQ(p.cma_rows, 256u);
  EXPECT_EQ(p.cma_cols, 256u);
  EXPECT_EQ(p.xbar_rows, 256u);
  EXPECT_EQ(p.xbar_cols, 128u);
}

TEST(Profile, TechnologyOrderings) {
  const auto fefet = DeviceProfile::fefet45();
  const auto cmos = DeviceProfile::cmos45();
  const auto reram = DeviceProfile::reram45();
  // CMOS SRAM writes are faster/cheaper; FeFET cells are denser.
  EXPECT_LT(cmos.cma_write.latency.value, fefet.cma_write.latency.value);
  EXPECT_GT(cmos.cma_area, fefet.cma_area);
  // CMOS search costs more energy (full-swing matchlines).
  EXPECT_GT(cmos.cma_search.energy.value, fefet.cma_search.energy.value);
  // ReRAM writes are dramatically slower and more energetic.
  EXPECT_GT(reram.cma_write.latency.value, 5.0 * fefet.cma_write.latency.value);
  EXPECT_GT(reram.cma_write.energy.value, 5.0 * fefet.cma_write.energy.value);
}

TEST(Ledger, ChargeAndTotal) {
  EnergyLedger l;
  l.charge(Component::kCmaRam, Pj{10.0});
  l.charge(Component::kCmaRam, Pj{5.0});
  l.charge(Component::kCrossbar, Pj{2.5});
  EXPECT_DOUBLE_EQ(l.energy(Component::kCmaRam).value, 15.0);
  EXPECT_EQ(l.ops(Component::kCmaRam), 2u);
  EXPECT_DOUBLE_EQ(l.total().value, 17.5);
}

TEST(Ledger, ChargeWithExplicitOpCount) {
  EnergyLedger l;
  l.charge(Component::kRscBus, Pj{100.0}, 25);
  EXPECT_EQ(l.ops(Component::kRscBus), 25u);
  EXPECT_DOUBLE_EQ(l.energy(Component::kRscBus).value, 100.0);
}

TEST(Ledger, MergeAndClear) {
  EnergyLedger a, b;
  a.charge(Component::kCmaAdd, Pj{1.0});
  b.charge(Component::kCmaAdd, Pj{2.0});
  b.charge(Component::kIbcNetwork, Pj{4.0});
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.energy(Component::kCmaAdd).value, 3.0);
  EXPECT_DOUBLE_EQ(a.energy(Component::kIbcNetwork).value, 4.0);
  EXPECT_EQ(a.ops(Component::kCmaAdd), 2u);
  a.clear();
  EXPECT_DOUBLE_EQ(a.total().value, 0.0);
  EXPECT_EQ(a.ops(Component::kCmaAdd), 0u);
}

TEST(Ledger, ComponentNamesAreDistinct) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Component::kCount); ++i)
    for (std::size_t j = i + 1; j < static_cast<std::size_t>(Component::kCount);
         ++j)
      EXPECT_NE(device::component_name(static_cast<Component>(i)),
                device::component_name(static_cast<Component>(j)));
}

}  // namespace
}  // namespace imars
