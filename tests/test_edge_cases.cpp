// Edge-case coverage across the system: degenerate inputs that are legal
// (and must work) rather than errors — empty histories, extreme radii,
// tied scores, single-row tables, quantized-MLP shape sweeps, full-model
// checkpoint round trips through the hardware backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/backend.hpp"
#include "data/movielens.hpp"
#include "lsh/lsh.hpp"
#include "nn/serialize.hpp"
#include "recsys/youtube_dnn.hpp"
#include "util/rng.hpp"
#include "xbar/xbar_mlp.hpp"

namespace imars {
namespace {

using core::ArchConfig;
using core::ImarsAccelerator;
using device::DeviceProfile;
using tensor::Matrix;
using tensor::QMatrix;
using tensor::Vector;

QMatrix random_table(std::size_t rows, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return QMatrix::quantize(Matrix::randn(rows, 32, 0.5f, rng));
}

// ---------- accelerator edges -----------------------------------------------

TEST(EdgeCases, SingleRowTable) {
  DeviceProfile profile = DeviceProfile::fefet45();
  ImarsAccelerator acc(ArchConfig{}, profile);
  const QMatrix table = random_table(1, 1);
  const auto id = acc.load_uiet("tiny", table);
  EXPECT_EQ(acc.active_cmas(), 1u);

  const core::LookupRequest req{id, {0, 0, 0}, true};  // repeated index
  const auto out = acc.lookup_pooled(std::span(&req, 1),
                                     core::TimingMode::kActualPlacement,
                                     nullptr);
  for (std::size_t c = 0; c < 32; ++c)
    EXPECT_EQ(out[0].lanes[c], 3 * static_cast<std::int32_t>(table.at(0, c)));
  // Mean pooling divides the repeats back out.
  EXPECT_NEAR(out[0].dequantized()[0],
              table.params().scale * static_cast<float>(table.at(0, 0)),
              1e-5f);
}

TEST(EdgeCases, NnsRadiusExtremes) {
  DeviceProfile profile = DeviceProfile::fefet45();
  ImarsAccelerator acc(ArchConfig{}, profile);
  const QMatrix table = random_table(300, 2);
  const lsh::RandomHyperplaneLsh hasher(32, 256, 3);
  const auto deq = table.dequantize();
  std::vector<util::BitVec> sigs;
  for (std::size_t r = 0; r < deq.rows(); ++r)
    sigs.push_back(hasher.encode(deq.row(r)));
  const auto id = acc.load_itet("ItET", table, sigs);

  // Radius 0: only exact signature matches (query = stored signature).
  const auto exact = acc.nns(id, sigs[7], 0, nullptr);
  EXPECT_FALSE(exact.empty());
  EXPECT_NE(std::find(exact.begin(), exact.end(), 7u), exact.end());

  // Radius = full width: everything matches.
  const auto all = acc.nns(id, sigs[7], 256, nullptr);
  EXPECT_EQ(all.size(), 300u);
  // Ascending ids regardless of placement.
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(EdgeCases, TopkCtrAllTiedScores) {
  DeviceProfile profile = DeviceProfile::fefet45();
  ImarsAccelerator acc(ArchConfig{}, profile);
  const std::vector<float> scores(10, 0.5f);
  const auto top = acc.topk_ctr(scores, 4, nullptr);
  // Deterministic: lowest indices win ties.
  EXPECT_EQ(top, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(EdgeCases, TopkCtrExtremeScores) {
  DeviceProfile profile = DeviceProfile::fefet45();
  ImarsAccelerator acc(ArchConfig{}, profile);
  // Scores outside [0,1] clamp to the thermometer range without throwing.
  const std::vector<float> scores = {-0.5f, 1.5f, 0.5f};
  const auto top = acc.topk_ctr(scores, 2, nullptr);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
}

// ---------- backend with empty history ----------------------------------------

TEST(EdgeCases, BackendHandlesEmptyHistory) {
  data::MovieLensConfig dcfg;
  dcfg.num_users = 60;
  dcfg.num_items = 80;
  dcfg.seed = 4;
  const data::MovieLensSynth ds(dcfg);
  recsys::YoutubeDnnConfig mcfg;
  mcfg.seed = 5;
  recsys::YoutubeDnn model(ds.schema(), mcfg);

  std::vector<recsys::UserContext> calib;
  for (std::size_t u = 0; u < 4; ++u) calib.push_back(model.make_context(ds, u));
  core::ImarsBackendConfig icfg;
  icfg.nns_radius = 120;
  core::ImarsBackend be(model, ArchConfig{}, DeviceProfile::fefet45(), icfg,
                        calib);

  // A cold-start user: valid sparse features, no interaction history.
  recsys::UserContext cold = model.make_context(ds, 0);
  cold.history.clear();

  recsys::StageStats fs, rs;
  const auto candidates = be.filter(cold, &fs);
  EXPECT_GT(fs.at(recsys::OpKind::kDnn).latency.value, 0.0);
  const auto recs = be.rank(cold, candidates, 5, &rs);
  EXPECT_LE(recs.size(), 5u);

  // Float reference accepts the same cold context.
  const auto u = model.user_embedding(cold);
  EXPECT_EQ(u.size(), 32u);
}

TEST(EdgeCases, BackendWorksWithStripedPlacement) {
  data::MovieLensConfig dcfg;
  dcfg.num_users = 50;
  dcfg.num_items = 70;
  dcfg.seed = 6;
  const data::MovieLensSynth ds(dcfg);
  recsys::YoutubeDnnConfig mcfg;
  mcfg.seed = 7;
  recsys::YoutubeDnn model(ds.schema(), mcfg);

  std::vector<recsys::UserContext> calib;
  for (std::size_t u = 0; u < 4; ++u) calib.push_back(model.make_context(ds, u));

  ArchConfig seq_arch;
  ArchConfig str_arch;
  str_arch.placement = core::RowPlacement::kStriped;
  core::ImarsBackendConfig icfg;
  icfg.nns_radius = 115;
  core::ImarsBackend seq_be(model, seq_arch, DeviceProfile::fefet45(), icfg,
                            calib);
  core::ImarsBackend str_be(model, str_arch, DeviceProfile::fefet45(), icfg,
                            calib);

  // Identical functional results under both layouts.
  for (std::size_t u = 0; u < 10; ++u) {
    const auto ctx = model.make_context(ds, u);
    EXPECT_EQ(seq_be.filter(ctx, nullptr), str_be.filter(ctx, nullptr));
  }
}

// ---------- XbarMlp shape sweep -------------------------------------------------

class XbarMlpShapes
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(XbarMlpShapes, QuantizedInferenceStaysCloseToFloat) {
  const auto dims = GetParam();
  DeviceProfile profile = DeviceProfile::fefet45();
  device::EnergyLedger ledger;
  util::Xoshiro256 rng(dims.front() * 131 + dims.back());
  nn::Mlp mlp(dims, nn::Activation::kIdentity, rng);

  std::vector<Vector> calib;
  for (int i = 0; i < 8; ++i) {
    Vector v(dims.front());
    for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    calib.push_back(v);
  }
  xbar::XbarMlp qmlp(profile, &ledger, mlp, calib);

  double err = 0.0, mag = 0.0;
  for (int t = 0; t < 10; ++t) {
    Vector v(dims.front());
    for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    const auto ref = mlp.infer(v);
    const auto got = qmlp.infer(v, nullptr);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      err += std::abs(ref[i] - got[i]);
      mag += std::abs(ref[i]);
    }
  }
  EXPECT_LT(err / (mag + 1e-9), 0.15) << "relative L1 error too high";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, XbarMlpShapes,
    ::testing::Values(std::vector<std::size_t>{4, 4},
                      std::vector<std::size_t>{196, 128, 64, 32},
                      std::vector<std::size_t>{260, 128, 1},
                      std::vector<std::size_t>{13, 256, 128, 32},
                      std::vector<std::size_t>{383, 256, 64, 1},
                      std::vector<std::size_t>{300, 300, 300}));

// ---------- full-model checkpoint through the hardware ---------------------------

TEST(EdgeCases, CheckpointedModelDeploysIdentically) {
  data::MovieLensConfig dcfg;
  dcfg.num_users = 40;
  dcfg.num_items = 60;
  dcfg.seed = 8;
  const data::MovieLensSynth ds(dcfg);
  recsys::YoutubeDnnConfig mcfg;
  mcfg.seed = 9;
  recsys::YoutubeDnn model(ds.schema(), mcfg);
  util::Xoshiro256 rng(10);
  model.train_filter_epoch(ds, rng);

  // Round-trip the item table through the serializer, then verify the
  // quantized snapshot (what the accelerator loads) is bit-identical.
  std::stringstream ss;
  nn::save(ss, model.item_table());
  const auto restored = nn::load_embedding_table(ss);
  const auto a = model.item_table().quantized();
  const auto b = restored.quantized();
  ASSERT_EQ(a.rows(), b.rows());
  EXPECT_FLOAT_EQ(a.params().scale, b.params().scale);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      EXPECT_EQ(a.at(r, c), b.at(r, c));
}

// ---------- dequantized pooling semantics -----------------------------------------

TEST(EdgeCases, PooledResultMeanVsSum) {
  core::PooledResult r;
  r.lanes = {10, -20};
  r.scale = 0.5f;
  r.count = 4;
  r.mean_pool = false;
  EXPECT_FLOAT_EQ(r.dequantized()[0], 5.0f);
  EXPECT_FLOAT_EQ(r.dequantized()[1], -10.0f);
  r.mean_pool = true;
  EXPECT_FLOAT_EQ(r.dequantized()[0], 1.25f);
  EXPECT_FLOAT_EQ(r.dequantized()[1], -2.5f);
}

}  // namespace
}  // namespace imars
