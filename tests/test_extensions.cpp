// Tests for the extension features: model serialization, exact top-k NNS on
// the TCAM, endurance tracking, the 22nm profile, and the throughput model.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>

#include "core/accelerator.hpp"
#include "core/throughput.hpp"
#include "lsh/lsh.hpp"
#include "nn/serialize.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using device::DeviceProfile;
using tensor::Matrix;
using tensor::QMatrix;
using tensor::Vector;

// ---------- serialization ----------------------------------------------------

TEST(Serialize, MatrixRoundTrip) {
  util::Xoshiro256 rng(1);
  const Matrix m = Matrix::randn(7, 13, 1.0f, rng);
  std::stringstream ss;
  nn::save(ss, m);
  const Matrix back = nn::load_matrix(ss);
  EXPECT_EQ(back, m);
}

TEST(Serialize, QMatrixRoundTrip) {
  util::Xoshiro256 rng(2);
  const QMatrix q = QMatrix::quantize(Matrix::randn(5, 8, 2.0f, rng));
  std::stringstream ss;
  nn::save(ss, q);
  const QMatrix back = nn::load_qmatrix(ss);
  EXPECT_EQ(back.rows(), q.rows());
  EXPECT_EQ(back.cols(), q.cols());
  EXPECT_FLOAT_EQ(back.params().scale, q.params().scale);
  for (std::size_t r = 0; r < q.rows(); ++r)
    for (std::size_t c = 0; c < q.cols(); ++c)
      EXPECT_EQ(back.at(r, c), q.at(r, c));
}

TEST(Serialize, MlpRoundTripPreservesInference) {
  util::Xoshiro256 rng(3);
  nn::Mlp mlp({6, 10, 4, 2}, nn::Activation::kSigmoid, rng);
  std::stringstream ss;
  nn::save(ss, mlp);
  nn::Mlp back = nn::load_mlp(ss);

  EXPECT_EQ(back.dims(), mlp.dims());
  EXPECT_EQ(back.layer(2).activation(), nn::Activation::kSigmoid);
  EXPECT_EQ(back.layer(0).activation(), nn::Activation::kRelu);

  Vector x(6);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const Vector a = mlp.infer(x);
  const Vector b = back.infer(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Serialize, EmbeddingTableRoundTrip) {
  util::Xoshiro256 rng(4);
  nn::EmbeddingTable t(9, 5, rng);
  std::stringstream ss;
  nn::save(ss, t);
  nn::EmbeddingTable back = nn::load_embedding_table(ss);
  EXPECT_EQ(back.rows(), t.rows());
  EXPECT_EQ(back.dim(), t.dim());
  for (std::size_t r = 0; r < t.rows(); ++r) {
    const auto a = t.row(r);
    const auto b = back.row(r);
    for (std::size_t c = 0; c < t.dim(); ++c) EXPECT_FLOAT_EQ(a[c], b[c]);
  }
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream ss;
  ss << "garbage bytes here and more of them";
  EXPECT_THROW((void)nn::load_matrix(ss), Error);
}

TEST(Serialize, TruncatedStreamThrows) {
  util::Xoshiro256 rng(5);
  const Matrix m = Matrix::randn(16, 16, 1.0f, rng);
  std::stringstream ss;
  nn::save(ss, m);
  const std::string whole = ss.str();
  std::stringstream cut(whole.substr(0, whole.size() / 2));
  EXPECT_THROW((void)nn::load_matrix(cut), Error);
}

TEST(Serialize, WrongObjectTypeThrows) {
  util::Xoshiro256 rng(6);
  nn::Mlp mlp({3, 2}, nn::Activation::kIdentity, rng);
  std::stringstream ss;
  nn::save(ss, mlp);
  EXPECT_THROW((void)nn::load_matrix(ss), Error);  // expects ITMX magic
}

// ---------- exact top-k NNS ----------------------------------------------------

struct NnsFixture {
  NnsFixture() {
    util::Xoshiro256 rng(7);
    table = QMatrix::quantize(Matrix::randn(700, 32, 0.5f, rng));
    const Matrix deq = table.dequantize();
    for (std::size_t r = 0; r < deq.rows(); ++r)
      sigs.push_back(hasher.encode(deq.row(r)));
    itet = acc.nns_ready(table, sigs);
  }
  // helper to load
  struct AccWrap {
    DeviceProfile profile = DeviceProfile::fefet45();
    core::ImarsAccelerator acc{core::ArchConfig{}, profile};
    std::size_t nns_ready(const QMatrix& t,
                          const std::vector<util::BitVec>& s) {
      const auto id = acc.load_itet("ItET", t, s);
      acc.reset_energy();
      return id;
    }
    core::ImarsAccelerator* operator->() { return &acc; }
  } acc;
  lsh::RandomHyperplaneLsh hasher{32, 256, 77};
  QMatrix table;
  std::vector<util::BitVec> sigs;
  std::size_t itet = 0;
};

TEST(NnsTopk, MatchesBruteForceTopk) {
  NnsFixture f;
  util::Xoshiro256 rng(8);
  for (std::size_t k : {1ul, 5ul, 20ul}) {
    Vector q(32);
    for (auto& x : q) x = static_cast<float>(rng.normal());
    const auto qsig = f.hasher.encode(q);

    recsys::OpCost cost;
    const auto got = f.acc->nns_topk(f.itet, qsig, k, &cost);
    ASSERT_EQ(got.size(), k);

    // Brute-force oracle: ascending Hamming distance, ties by index.
    std::vector<std::size_t> order(f.sigs.size());
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::size_t> dist(f.sigs.size());
    for (std::size_t i = 0; i < f.sigs.size(); ++i)
      dist[i] = f.sigs[i].hamming(qsig);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (dist[a] != dist[b]) return dist[a] < dist[b];
      return a < b;
    });
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(got[i], order[i]) << "k=" << k;
    EXPECT_GT(cost.latency.value, 0.0);
  }
}

TEST(NnsTopk, KLargerThanTableReturnsEverything) {
  NnsFixture f;
  const auto got = f.acc->nns_topk(f.itet, f.sigs[0], 10000, nullptr);
  EXPECT_EQ(got.size(), 700u);
}

TEST(NnsTopk, CostsMoreThanFixedRadius) {
  NnsFixture f;
  recsys::OpCost fixed, topk;
  (void)f.acc->nns(f.itet, f.sigs[0], 96, &fixed);
  (void)f.acc->nns_topk(f.itet, f.sigs[0], 10, &topk);
  // The threshold sweep costs multiple searches — the op-count reduction
  // the paper cites for preferring fixed-radius search in filtering.
  EXPECT_GT(topk.latency.value, 2.0 * fixed.latency.value);
  EXPECT_GT(topk.energy.value, 2.0 * fixed.energy.value);
}

TEST(NnsTopk, RejectsBadArguments) {
  NnsFixture f;
  EXPECT_THROW((void)f.acc->nns_topk(f.itet, f.sigs[0], 0, nullptr), Error);
}

// ---------- endurance tracking ---------------------------------------------------

TEST(Endurance, CountsRowWrites) {
  device::EnergyLedger ledger;
  const auto profile = DeviceProfile::fefet45();
  cma::Cma array(profile, &ledger);
  EXPECT_EQ(array.row_writes(5), 0u);
  for (int i = 0; i < 3; ++i) array.write_row(5, util::BitVec(256));
  array.write_row(6, util::BitVec(256));
  EXPECT_EQ(array.row_writes(5), 3u);
  EXPECT_EQ(array.row_writes(6), 1u);
  EXPECT_EQ(array.max_row_writes(), 3u);
}

TEST(Endurance, GpcimAddWearsDestination) {
  device::EnergyLedger ledger;
  const auto profile = DeviceProfile::fefet45();
  cma::Cma array(profile, &ledger);
  array.write_row_i8(0, std::vector<std::int8_t>(32, 1));
  array.write_row_i8(1, std::vector<std::int8_t>(32, 2));
  array.set_mode(cma::Mode::kGpcim);
  for (int i = 0; i < 5; ++i) array.add_rows(2, 0, 1);
  EXPECT_EQ(array.row_writes(2), 5u);
  // Sources are only sensed, not rewritten.
  EXPECT_EQ(array.row_writes(0), 1u);
}

TEST(Endurance, WearoutFractionUsesProfileBudget) {
  device::EnergyLedger ledger;
  auto profile = DeviceProfile::reram45();  // 1e7 budget
  cma::Cma array(profile, &ledger);
  for (int i = 0; i < 100; ++i) array.write_row(0, util::BitVec(256));
  EXPECT_NEAR(array.wearout_fraction(), 100.0 / 1e7, 1e-12);
  // FeFET budget is 1e11: same writes wear 10,000x less. (Cma keeps a
  // pointer to the profile, so it must outlive the array.)
  const auto fefet_profile = DeviceProfile::fefet45();
  cma::Cma fefet(fefet_profile, &ledger);
  for (int i = 0; i < 100; ++i) fefet.write_row(0, util::BitVec(256));
  EXPECT_LT(fefet.wearout_fraction(), array.wearout_fraction() / 1000.0);
}

// ---------- 22nm profile ----------------------------------------------------------

TEST(Fefet22, ScalesDownFrom45nm) {
  const auto p45 = DeviceProfile::fefet45();
  const auto p22 = DeviceProfile::fefet22();
  EXPECT_LT(p22.cma_read.energy.value, p45.cma_read.energy.value);
  EXPECT_LT(p22.cma_search.latency.value, p45.cma_search.latency.value);
  EXPECT_LT(p22.cma_area, 0.3);
  // Same geometry: drop-in replacement for the 45nm point.
  EXPECT_EQ(p22.cma_rows, p45.cma_rows);
  EXPECT_EQ(p22.xbar_cols, p45.xbar_cols);
}

// ---------- throughput model --------------------------------------------------------

TEST(Throughput, SerialAndPipelinedBounds) {
  core::StageTimes t;
  t.filter = device::Ns{3000.0};   // 3 us
  t.rank = device::Ns{40000.0};    // 40 us
  t.shared_et = device::Ns{1000.0};

  EXPECT_NEAR(core::qps_serial(t), 1e9 / 43000.0, 1e-6);
  // Steady-state initiation interval = the busiest resource. The stage
  // totals already contain their ET portions, so the bottleneck here is
  // the 40 us rank stage, not 40 us + the (already-counted) ET time.
  EXPECT_NEAR(core::qps_pipelined(t), 1e9 / 40000.0, 1e-6);
  EXPECT_GT(core::pipeline_speedup(t), 1.0);
  // Pipelining saturates — but can never beat — the bottleneck stage.
  EXPECT_DOUBLE_EQ(core::qps_pipelined(t), 1e9 / t.rank.value);
}

// Regression for the degenerate accounting bench_throughput exposed: the
// old model added shared_et ON TOP of the slower stage (double-counting
// the ET time inside the stage totals) and clamped to serial, so any
// query with shared_et >= min(filter, rank) reported speedup exactly 1.
TEST(Throughput, SharedEtAboveSmallerStageStillGains) {
  core::StageTimes t;
  t.filter = device::Ns{3000.0};
  t.rank = device::Ns{40000.0};
  t.shared_et = device::Ns{5000.0};  // >= filter: old model pinned at 1
  EXPECT_NEAR(core::qps_pipelined(t), 1e9 / 40000.0, 1e-6);
  EXPECT_NEAR(core::pipeline_speedup(t), 43000.0 / 40000.0, 1e-9);
}

// Pure ET-bank queries cannot pipeline (the shared banks serialize
// everything); the speedup degenerates to exactly 1, never below.
TEST(Throughput, PureEtTimeCannotPipeline) {
  core::StageTimes t;
  t.filter = device::Ns{6000.0};
  t.rank = device::Ns{4000.0};
  t.shared_et = device::Ns{10000.0};  // == filter + rank: all ET time
  EXPECT_NEAR(core::pipeline_speedup(t), 1.0, 1e-12);
}

TEST(Throughput, BalancedStagesGainMost) {
  core::StageTimes balanced{device::Ns{10000.0}, device::Ns{10000.0},
                            device::Ns{0.0}};
  core::StageTimes skewed{device::Ns{1000.0}, device::Ns{19000.0},
                          device::Ns{0.0}};
  EXPECT_NEAR(core::pipeline_speedup(balanced), 2.0, 1e-9);
  EXPECT_LT(core::pipeline_speedup(skewed), 1.1);
}

TEST(Throughput, ZeroTimesAreSafe) {
  core::StageTimes t{};
  EXPECT_EQ(core::qps_serial(t), 0.0);
  EXPECT_EQ(core::qps_pipelined(t), 0.0);
}

}  // namespace
}  // namespace imars
