// Systematic failure injection: every checked precondition in the public
// API surfaces as imars::Error with a useful message, and recovery (catch
// and continue) leaves objects usable.
#include <gtest/gtest.h>

#include "adder/adder_tree.hpp"
#include "baseline/cpu_backend.hpp"
#include "cma/cma.hpp"
#include "core/accelerator.hpp"
#include "core/backend.hpp"
#include "core/mapping.hpp"
#include "core/query_engine.hpp"
#include "data/criteo.hpp"
#include "data/movielens.hpp"
#include "noc/controller.hpp"
#include "recsys/trainer.hpp"
#include "recsys/youtube_dnn.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using core::ArchConfig;
using core::ImarsAccelerator;
using device::DeviceProfile;
using tensor::Matrix;
using tensor::QMatrix;

QMatrix table_of(std::size_t rows, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return QMatrix::quantize(Matrix::randn(rows, 32, 0.5f, rng));
}

TEST(FailureInjection, ErrorMessagesCarryContext) {
  const auto profile = DeviceProfile::fefet45();
  device::EnergyLedger ledger;
  cma::Cma array(profile, &ledger);
  try {
    array.write_row(999, util::BitVec(256));
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    // File:line prefix and the offending value must both appear.
    EXPECT_NE(what.find("cma.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("999"), std::string::npos) << what;
  }
}

TEST(FailureInjection, CmaRecoversAfterModeError) {
  const auto profile = DeviceProfile::fefet45();
  device::EnergyLedger ledger;
  cma::Cma array(profile, &ledger);
  array.write_row_i8(0, std::vector<std::int8_t>(32, 1));
  array.set_mode(cma::Mode::kTcam);
  EXPECT_THROW((void)array.read_row(0), Error);
  // The array is still fully functional after the failed call.
  array.set_mode(cma::Mode::kRam);
  EXPECT_EQ(array.read_row_i8(0), std::vector<std::int8_t>(32, 1));
}

TEST(FailureInjection, AcceleratorRejectsThenContinues) {
  const auto profile = DeviceProfile::fefet45();
  ImarsAccelerator acc(ArchConfig{}, profile);
  const auto id = acc.load_uiet("t", table_of(100, 1));

  // Bad table id.
  const core::LookupRequest bad_table{id + 7, {0}, false};
  EXPECT_THROW((void)acc.lookup_pooled(std::span(&bad_table, 1),
                                       core::TimingMode::kActualPlacement,
                                       nullptr),
               Error);
  // Bad index.
  const core::LookupRequest bad_index{id, {100}, false};
  EXPECT_THROW((void)acc.lookup_pooled(std::span(&bad_index, 1),
                                       core::TimingMode::kActualPlacement,
                                       nullptr),
               Error);
  // NNS on a signature-less table.
  EXPECT_THROW((void)acc.nns(id, util::BitVec(256), 5, nullptr), Error);
  // Empty request list.
  EXPECT_THROW(
      (void)acc.lookup_pooled({}, core::TimingMode::kActualPlacement, nullptr),
      Error);

  // The machine still answers correct requests afterwards.
  const core::LookupRequest ok{id, {42}, false};
  const auto out = acc.lookup_pooled(std::span(&ok, 1),
                                     core::TimingMode::kActualPlacement,
                                     nullptr);
  EXPECT_EQ(out.size(), 1u);
}

TEST(FailureInjection, ItetSignatureValidation) {
  const auto profile = DeviceProfile::fefet45();
  ImarsAccelerator acc(ArchConfig{}, profile);
  const auto table = table_of(300, 2);

  // Wrong signature count.
  std::vector<util::BitVec> few(10, util::BitVec(256));
  EXPECT_THROW((void)acc.load_itet("ItET", table, few), Error);

  // Wrong signature width.
  std::vector<util::BitVec> wrong_width(300, util::BitVec(128));
  EXPECT_THROW((void)acc.load_itet("ItET", table, wrong_width), Error);
}

TEST(FailureInjection, MappingCapacityErrors) {
  ArchConfig tiny;
  tiny.banks = 2;
  tiny.mats_per_bank = 1;
  tiny.cmas_per_mat = 2;  // 512-row banks
  const core::EtMapping m(tiny);

  data::DatasetSchema schema;
  schema.user_item = {{"fits", 500, 1, data::StageUse::kShared},
                      {"too_big", 600, 1, data::StageUse::kShared}};
  EXPECT_THROW(m.map(schema), Error);

  schema.user_item[1].cardinality = 400;
  EXPECT_NO_THROW(m.map(schema));

  schema.user_item.push_back({"third", 10, 1, data::StageUse::kShared});
  EXPECT_THROW(m.map(schema), Error);  // out of banks
}

TEST(FailureInjection, AdderTreeInputValidation) {
  const auto profile = DeviceProfile::fefet45();
  device::EnergyLedger ledger;
  const adder::IntraMatAdderTree mat_tree(profile, &ledger, 4);

  EXPECT_THROW((void)mat_tree.sum({}, nullptr), Error);
  const std::vector<adder::Lanes> too_many(5, adder::Lanes(32, 0));
  EXPECT_THROW((void)mat_tree.sum(too_many, nullptr), Error);
  const std::vector<adder::Lanes> ragged = {adder::Lanes(32, 0),
                                            adder::Lanes(31, 0)};
  EXPECT_THROW((void)mat_tree.sum(ragged, nullptr), Error);
}

TEST(FailureInjection, QueryEngineRejectsEmptyStream) {
  data::MovieLensConfig dcfg;
  dcfg.num_users = 60;
  dcfg.num_items = 80;
  dcfg.seed = 3;
  const data::MovieLensSynth ds(dcfg);
  recsys::YoutubeDnnConfig mcfg;
  mcfg.emb_dim = 32;
  mcfg.filter_hidden = {32, 32};
  mcfg.rank_hidden = {16};
  mcfg.seed = 4;
  recsys::YoutubeDnn model(ds.schema(), mcfg);
  baseline::CpuBackend backend(model, baseline::CpuBackendConfig{});
  EXPECT_THROW((void)core::run_stream(backend, {}, 5), Error);
}

TEST(FailureInjection, TrainerRejectsZeroEpochs) {
  data::MovieLensConfig dcfg;
  dcfg.num_users = 50;
  dcfg.num_items = 60;
  dcfg.seed = 5;
  const data::MovieLensSynth ds(dcfg);
  recsys::YoutubeDnnConfig mcfg;
  mcfg.emb_dim = 16;
  mcfg.filter_hidden = {16, 16};
  mcfg.seed = 6;
  recsys::YoutubeDnn model(ds.schema(), mcfg);
  recsys::TrainOptions opts;
  opts.max_epochs = 0;
  EXPECT_THROW((void)recsys::train_filter(model, ds, opts), Error);
}

TEST(FailureInjection, BackendContextValidation) {
  data::MovieLensConfig dcfg;
  dcfg.num_users = 50;
  dcfg.num_items = 60;
  dcfg.seed = 7;
  const data::MovieLensSynth ds(dcfg);
  recsys::YoutubeDnnConfig mcfg;  // default 32-d
  mcfg.seed = 8;
  recsys::YoutubeDnn model(ds.schema(), mcfg);

  // A malformed context (wrong sparse-feature count) is rejected before any
  // hardware state changes.
  recsys::UserContext broken = model.make_context(ds, 0);
  broken.sparse.pop_back();
  EXPECT_THROW((void)model.filter_input(broken), Error);
}

TEST(FailureInjection, StatsUnchangedOnFailedOp) {
  const auto profile = DeviceProfile::fefet45();
  ImarsAccelerator acc(ArchConfig{}, profile);
  const auto id = acc.load_uiet("t", table_of(100, 9));
  acc.reset_energy();

  // An out-of-range lookup throws before charging anything.
  const core::LookupRequest bad{id, {1000}, false};
  recsys::OpCost cost;
  EXPECT_THROW((void)acc.lookup_pooled(std::span(&bad, 1),
                                       core::TimingMode::kActualPlacement,
                                       &cost),
               Error);
  EXPECT_DOUBLE_EQ(cost.latency.value, 0.0);
  EXPECT_DOUBLE_EQ(cost.energy.value, 0.0);
  EXPECT_DOUBLE_EQ(acc.ledger().total().value, 0.0);
}

}  // namespace
}  // namespace imars
