// End-to-end integration tests: the three backends (CPU reference, GPU cost
// model, iMARS) run the same trained models on the same data; functional
// agreement and the paper's headline performance orderings must hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baseline/cpu_backend.hpp"
#include "baseline/exact_nns.hpp"
#include "core/backend.hpp"
#include "core/calibration.hpp"
#include "data/movielens.hpp"
#include "recsys/metrics.hpp"
#include "recsys/youtube_dnn.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace imars {
namespace {

using baseline::CpuBackend;
using baseline::CpuBackendConfig;
using baseline::FilterVariant;
using baseline::GpuModel;
using baseline::GpuModelBackend;
using core::ArchConfig;
using core::ImarsBackend;
using core::ImarsBackendConfig;
using data::MovieLensConfig;
using data::MovieLensSynth;
using device::DeviceProfile;
using recsys::OpKind;
using recsys::StageStats;
using recsys::YoutubeDnn;
using recsys::YoutubeDnnConfig;

struct E2eFixture {
  E2eFixture() {
    MovieLensConfig dcfg;
    dcfg.num_users = 120;
    dcfg.num_items = 100;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 51;
    ds = std::make_unique<MovieLensSynth>(dcfg);

    YoutubeDnnConfig mcfg;  // paper-sized model (32-d, 128-64-32 / 128-1)
    mcfg.negatives = 4;
    mcfg.seed = 53;
    model = std::make_unique<YoutubeDnn>(ds->schema(), mcfg);
    util::Xoshiro256 rng(57);
    for (int e = 0; e < 3; ++e) model->train_filter_epoch(*ds, rng);
    model->train_rank_epoch(*ds, rng);

    std::vector<recsys::UserContext> calib;
    for (std::size_t u = 0; u < 8; ++u)
      calib.push_back(model->make_context(*ds, u));

    ImarsBackendConfig icfg;
    icfg.nns_radius = 112;
    imars_be = std::make_unique<ImarsBackend>(*model, ArchConfig{},
                                              DeviceProfile::fefet45(), icfg,
                                              calib);

    CpuBackendConfig ccfg;
    ccfg.variant = FilterVariant::kFp32Cosine;
    ccfg.candidates = 20;
    cpu_be = std::make_unique<CpuBackend>(*model, ccfg);

    baseline::GpuBackendConfig gcfg;
    gcfg.candidates = 20;
    gpu_be = std::make_unique<GpuModelBackend>(*model, gpu, gcfg);
  }

  std::unique_ptr<MovieLensSynth> ds;
  std::unique_ptr<YoutubeDnn> model;
  GpuModel gpu;
  std::unique_ptr<ImarsBackend> imars_be;
  std::unique_ptr<CpuBackend> cpu_be;
  std::unique_ptr<GpuModelBackend> gpu_be;
};

TEST(Integration, AllBackendsProduceRecommendations) {
  E2eFixture f;
  std::size_t imars_nonempty = 0;
  for (std::size_t u = 0; u < 20; ++u) {
    const auto ctx = f.model->make_context(*f.ds, u);
    const auto cpu = recsys::recommend(*f.cpu_be, ctx, 5, nullptr, nullptr);
    const auto gpu = recsys::recommend(*f.gpu_be, ctx, 5, nullptr, nullptr);
    EXPECT_EQ(cpu.size(), 5u);
    EXPECT_EQ(gpu.size(), 5u);
    const auto hw = recsys::recommend(*f.imars_be, ctx, 5, nullptr, nullptr);
    if (!hw.empty()) ++imars_nonempty;
    EXPECT_LE(hw.size(), 5u);
  }
  // Fixed-radius search occasionally returns nothing, but not usually.
  EXPECT_GE(imars_nonempty, 15u);
}

TEST(Integration, GpuAndCpuAgreeFunctionally) {
  E2eFixture f;
  for (std::size_t u = 0; u < 10; ++u) {
    const auto ctx = f.model->make_context(*f.ds, u);
    const auto cpu = recsys::recommend(*f.cpu_be, ctx, 5, nullptr, nullptr);
    const auto gpu = recsys::recommend(*f.gpu_be, ctx, 5, nullptr, nullptr);
    ASSERT_EQ(cpu.size(), gpu.size());
    for (std::size_t i = 0; i < cpu.size(); ++i) {
      EXPECT_EQ(cpu[i].item, gpu[i].item);
      EXPECT_FLOAT_EQ(cpu[i].score, gpu[i].score);
    }
  }
}

TEST(Integration, ImarsBeatsGpuOnLatencyAndEnergy) {
  E2eFixture f;
  StageStats gpu_f, gpu_r, hw_f, hw_r;
  for (std::size_t u = 0; u < 10; ++u) {
    const auto ctx = f.model->make_context(*f.ds, u);
    (void)recsys::recommend(*f.gpu_be, ctx, 5, &gpu_f, &gpu_r);
    (void)recsys::recommend(*f.imars_be, ctx, 5, &hw_f, &hw_r);
  }
  const double gpu_lat =
      gpu_f.total().latency.value + gpu_r.total().latency.value;
  const double hw_lat = hw_f.total().latency.value + hw_r.total().latency.value;
  const double gpu_e = gpu_f.total().energy.value + gpu_r.total().energy.value;
  const double hw_e = hw_f.total().energy.value + hw_r.total().energy.value;

  // Paper headline: iMARS wins end-to-end on both axes by >10x.
  EXPECT_GT(gpu_lat / hw_lat, 5.0);
  EXPECT_GT(gpu_e / hw_e, 50.0);
}

TEST(Integration, EtLookupSpeedupOrderMatchesTableIII) {
  E2eFixture f;
  // Per-op: GPU ET lookup / iMARS ET lookup must land in the tens
  // (Table III reports 43x-62x).
  StageStats hw;
  const auto ctx = f.model->make_context(*f.ds, 0);
  (void)f.imars_be->filter(ctx, &hw);
  const double hw_et = hw.at(OpKind::kEtLookup).latency.value;
  const double gpu_et = f.gpu.et_lookup(6).latency.value;
  EXPECT_GT(gpu_et / hw_et, 10.0);
  EXPECT_LT(gpu_et / hw_et, 300.0);
}

TEST(Integration, NnsSpeedupIsOrdersOfMagnitude) {
  E2eFixture f;
  StageStats hw;
  const auto ctx = f.model->make_context(*f.ds, 0);
  (void)f.imars_be->filter(ctx, &hw);
  const double hw_nns = hw.at(OpKind::kNns).latency.value;
  const double gpu_nns =
      f.gpu.nns(baseline::GpuNnsKind::kLsh256, f.ds->num_items())
          .latency.value;
  // Paper (Sec IV-C2): 3.8e4x on the full ItET; with the small test ItET
  // the O(1) TCAM search still wins by >1e3.
  EXPECT_GT(gpu_nns / hw_nns, 1e3);
}

TEST(Integration, HitRateOrderingAcrossVariants) {
  // The Sec IV-B shape: fp32 cosine >= int8 cosine >= int8 LSH Hamming,
  // evaluated with the same trained model and matched candidate budgets.
  E2eFixture f;
  const std::size_t n = 15;

  CpuBackendConfig c1;
  c1.variant = FilterVariant::kFp32Cosine;
  c1.candidates = n;
  CpuBackendConfig c2 = c1;
  c2.variant = FilterVariant::kInt8Cosine;
  CpuBackend fp32(*f.model, c1), int8(*f.model, c2);

  CpuBackendConfig c3 = c1;
  c3.variant = FilterVariant::kInt8LshHamming;
  CpuBackend lshv(*f.model, c3);

  const auto hr = [&](CpuBackend& be) {
    return recsys::hit_rate(
        f.ds->num_users(),
        [&](std::size_t u) {
          return be.filter(f.model->make_context(*f.ds, u), nullptr);
        },
        [&](std::size_t u) { return f.ds->user(u).heldout; });
  };

  const double hr_fp32 = hr(fp32);
  const double hr_int8 = hr(int8);
  // Size-matched Hamming retrieval: top-n by signature distance (the
  // fixed-radius set has a different cardinality, so comparing it against
  // top-n cosine would conflate budget with distance quality).
  const double hr_lsh = recsys::hit_rate(
      f.ds->num_users(),
      [&](std::size_t u) {
        const auto ctx = f.model->make_context(*f.ds, u);
        const auto q = lshv.signature_of(f.model->user_embedding(ctx));
        return baseline::topk_hamming(lshv.item_signatures(), q, n);
      },
      [&](std::size_t u) { return f.ds->user(u).heldout; });

  EXPECT_GT(hr_fp32, 0.05);            // the trained model retrieves signal
  EXPECT_GE(hr_fp32 + 0.05, hr_int8);  // int8 within noise of fp32
  EXPECT_GE(hr_int8 + 0.05, hr_lsh);   // LSH degrades, as in the paper
}

TEST(Integration, EnergyLedgerBreakdownSumsToTotal) {
  E2eFixture f;
  const auto ctx = f.model->make_context(*f.ds, 2);
  auto& acc = f.imars_be->accelerator();
  acc.reset_energy();
  (void)recsys::recommend(*f.imars_be, ctx, 5, nullptr, nullptr);

  double sum = 0.0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(device::Component::kCount);
       ++i)
    sum += acc.ledger().energy(static_cast<device::Component>(i)).value;
  EXPECT_NEAR(sum, acc.ledger().total().value, 1e-6);
  EXPECT_GT(sum, 0.0);
}

TEST(Integration, DeterministicAcrossRuns) {
  E2eFixture f1, f2;
  const auto ctx1 = f1.model->make_context(*f1.ds, 9);
  const auto ctx2 = f2.model->make_context(*f2.ds, 9);
  const auto r1 = recsys::recommend(*f1.imars_be, ctx1, 5, nullptr, nullptr);
  const auto r2 = recsys::recommend(*f2.imars_be, ctx2, 5, nullptr, nullptr);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].item, r2[i].item);
    EXPECT_FLOAT_EQ(r1[i].score, r2[i].score);
  }
}

}  // namespace
}  // namespace imars
