// Tests for the IVF approximate-NNS index and the real-dataset file loaders.
#include <gtest/gtest.h>

#include <sstream>

#include "baseline/exact_nns.hpp"
#include "baseline/ivf.hpp"
#include "data/loaders.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using baseline::IvfIndex;
using tensor::Matrix;
using tensor::Vector;

Matrix random_items(std::size_t n, std::size_t dim, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return Matrix::randn(n, dim, 1.0f, rng);
}

// ---------- IVF ---------------------------------------------------------------

TEST(Ivf, EveryItemLandsInExactlyOneList) {
  const Matrix items = random_items(500, 16, 1);
  IvfIndex::Config cfg;
  cfg.nlist = 8;
  cfg.nprobe = 2;
  const IvfIndex index(items, cfg);
  const auto sizes = index.list_sizes();
  std::size_t total = 0;
  for (auto s : sizes) total += s;
  EXPECT_EQ(total, 500u);
  EXPECT_EQ(index.size(), 500u);
}

TEST(Ivf, FullProbeEqualsExactSearch) {
  const Matrix items = random_items(300, 12, 2);
  IvfIndex::Config cfg;
  cfg.nlist = 10;
  cfg.nprobe = 10;  // scan everything
  const IvfIndex index(items, cfg);

  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Vector q(12);
    for (auto& x : q) x = static_cast<float>(rng.normal());
    const auto approx = index.search(q, 8);
    const auto exact = baseline::topk_cosine(items, q, 8);
    EXPECT_EQ(approx, exact) << "trial " << trial;
  }
}

TEST(Ivf, RecallImprovesWithProbes) {
  const Matrix items = random_items(2000, 24, 4);
  IvfIndex::Config cfg;
  cfg.nlist = 32;
  cfg.nprobe = 1;
  const IvfIndex index(items, cfg);

  util::Xoshiro256 rng(5);
  const std::size_t k = 10;
  double recall1 = 0.0, recall8 = 0.0, recall32 = 0.0;
  const int queries = 40;
  for (int t = 0; t < queries; ++t) {
    Vector q(24);
    for (auto& x : q) x = static_cast<float>(rng.normal());
    const auto exact = baseline::topk_cosine(items, q, k);
    const auto count_hits = [&](std::size_t nprobe) {
      const auto got = index.search_probes(q, k, nprobe);
      std::size_t hits = 0;
      for (auto e : exact)
        if (std::find(got.begin(), got.end(), e) != got.end()) ++hits;
      return static_cast<double>(hits) / static_cast<double>(k);
    };
    recall1 += count_hits(1);
    recall8 += count_hits(8);
    recall32 += count_hits(32);
  }
  recall1 /= queries;
  recall8 /= queries;
  recall32 /= queries;

  EXPECT_LT(recall1, recall32);
  EXPECT_LE(recall8, recall32 + 1e-9);
  EXPECT_DOUBLE_EQ(recall32, 1.0);  // full probe is exact
  EXPECT_GT(recall8, 0.5);          // partial probe already decent
}

TEST(Ivf, ScanFractionTracksProbeRatio) {
  const Matrix items = random_items(400, 8, 6);
  IvfIndex::Config cfg;
  cfg.nlist = 16;
  cfg.nprobe = 4;
  const IvfIndex index(items, cfg);
  EXPECT_DOUBLE_EQ(index.scan_fraction(4), 0.25);
  EXPECT_DOUBLE_EQ(index.scan_fraction(16), 1.0);
  EXPECT_DOUBLE_EQ(index.scan_fraction(100), 1.0);  // clamped
}

TEST(Ivf, RejectsBadConfig) {
  const Matrix items = random_items(10, 4, 7);
  IvfIndex::Config bad;
  bad.nlist = 4;
  bad.nprobe = 5;  // > nlist
  EXPECT_THROW(IvfIndex(items, bad), Error);
  EXPECT_THROW(IvfIndex(Matrix(0, 4), IvfIndex::Config{}), Error);
}

TEST(Ivf, QueryDimChecked) {
  const Matrix items = random_items(50, 8, 8);
  const IvfIndex index(items, IvfIndex::Config{});
  EXPECT_THROW((void)index.search(Vector(7, 0.0f), 3), Error);
}

// ---------- MovieLens loaders ----------------------------------------------------

TEST(MlLoader, ParsesRatingsFormat) {
  std::stringstream ss;
  ss << "1::1193::5::978300760\n"
     << "1::661::3::978302109\n"
     << "2::1357::5::978298709\n";
  const auto ratings = data::parse_movielens_ratings(ss);
  ASSERT_EQ(ratings.size(), 3u);
  EXPECT_EQ(ratings[0].user, 0u);   // converted to 0-based
  EXPECT_EQ(ratings[0].item, 1192u);
  EXPECT_EQ(ratings[0].rating, 5);
  EXPECT_EQ(ratings[0].timestamp, 978300760);
}

TEST(MlLoader, RejectsMalformedRatings) {
  std::stringstream missing;
  missing << "1::1193::5\n";
  EXPECT_THROW((void)data::parse_movielens_ratings(missing), Error);

  std::stringstream bad_rating;
  bad_rating << "1::1193::9::978300760\n";
  EXPECT_THROW((void)data::parse_movielens_ratings(bad_rating), Error);

  std::stringstream bad_number;
  bad_number << "1::abc::5::978300760\n";
  EXPECT_THROW((void)data::parse_movielens_ratings(bad_number), Error);
}

TEST(MlLoader, ParsesUsersFormat) {
  std::stringstream ss;
  ss << "1::F::1::10::48067\n"
     << "2::M::56::16::70072\n";
  const auto users = data::parse_movielens_users(ss);
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0].gender, 'F');
  EXPECT_EQ(users[0].age, 1);
  EXPECT_EQ(users[1].occupation, 16);
  EXPECT_EQ(users[1].zip, "70072");
}

TEST(MlLoader, BuildsLeaveOneOutRecords) {
  std::stringstream ratings_ss;
  // User 1: four positives (>=4) in time order 10,20,30,40 -> heldout = the
  // latest (item 400). User 2: only one positive -> dropped.
  ratings_ss << "1::100::5::10\n"
             << "1::200::4::20\n"
             << "1::300::2::25\n"   // negative, ignored
             << "1::301::5::30\n"
             << "1::400::4::40\n"
             << "2::100::5::50\n";
  std::stringstream users_ss;
  users_ss << "1::M::25::3::12345\n"
           << "2::F::45::7::67890\n";

  const auto built = data::build_movielens(
      data::parse_movielens_ratings(ratings_ss),
      data::parse_movielens_users(users_ss));

  ASSERT_EQ(built.users.size(), 1u);  // user 2 dropped
  const auto& u = built.users[0];
  EXPECT_EQ(u.history.size(), 3u);
  // Heldout is the most recent positive (file item 400).
  // Dense ids follow first-appearance order: 100->0, 200->1, 300->2,
  // 301->3, 400->4.
  EXPECT_EQ(u.heldout, 4u);
  EXPECT_EQ(u.history, (std::vector<std::size_t>{0, 1, 3}));
  // Schema mirrors the synthetic generator's layout.
  EXPECT_EQ(built.schema.user_item.size(), 6u);
  EXPECT_EQ(built.schema.user_item[4].cardinality, 1u);  // one kept user
  EXPECT_TRUE(built.schema.has_item_table);
}

// ---------- Criteo loader ---------------------------------------------------------

std::string criteo_line(int label, const std::string& dense_fill,
                        const std::string& cat_fill) {
  std::string line = std::to_string(label);
  for (int i = 0; i < 13; ++i) line += "\t" + dense_fill;
  for (int i = 0; i < 26; ++i) line += "\t" + cat_fill;
  return line;
}

TEST(CriteoLoader, ParsesWellFormedLine) {
  const auto s = data::parse_criteo_line(criteo_line(1, "5", "68fd1e64"), 1000);
  EXPECT_EQ(s.label, 1);
  ASSERT_EQ(s.dense.size(), 13u);
  EXPECT_FLOAT_EQ(s.dense[0], std::log1p(5.0f));
  ASSERT_EQ(s.sparse.size(), 26u);
  for (auto idx : s.sparse) EXPECT_LT(idx, 1000u);
  // Same field text hashes differently per column (per-column salt).
  EXPECT_NE(s.sparse[0], s.sparse[1]);
}

TEST(CriteoLoader, MissingFieldsGetDefaults) {
  const auto s = data::parse_criteo_line(criteo_line(0, "", ""), 500);
  for (float d : s.dense) EXPECT_FLOAT_EQ(d, 0.0f);
  for (auto idx : s.sparse) EXPECT_EQ(idx, 0u);
}

TEST(CriteoLoader, NegativeDenseClampsToZero) {
  const auto s = data::parse_criteo_line(criteo_line(0, "-3", "a"), 500);
  for (float d : s.dense) EXPECT_FLOAT_EQ(d, 0.0f);
}

TEST(CriteoLoader, RejectsMalformedLines) {
  EXPECT_THROW((void)data::parse_criteo_line("1\t2\t3", 100), Error);
  EXPECT_THROW((void)data::parse_criteo_line(criteo_line(7, "1", "a"), 100),
               Error);  // label must be 0/1
  EXPECT_THROW((void)data::parse_criteo_line(criteo_line(1, "1", "a"), 0),
               Error);  // zero hash buckets
}

TEST(CriteoLoader, StreamParsingRespectsLimit) {
  std::stringstream ss;
  for (int i = 0; i < 10; ++i) ss << criteo_line(i % 2, "1", "ff") << "\n";
  const auto all = [&] {
    std::stringstream copy(ss.str());
    return data::parse_criteo(copy, 100);
  }();
  EXPECT_EQ(all.size(), 10u);
  std::stringstream copy(ss.str());
  EXPECT_EQ(data::parse_criteo(copy, 100, 4).size(), 4u);
}

TEST(CriteoLoader, DeterministicHashing) {
  const auto a = data::parse_criteo_line(criteo_line(1, "7", "deadbeef"), 30000);
  const auto b = data::parse_criteo_line(criteo_line(1, "7", "deadbeef"), 30000);
  EXPECT_EQ(a.sparse, b.sparse);
}

}  // namespace
}  // namespace imars
