// Unit + property tests for random-hyperplane LSH: determinism, collision
// probability theory, cosine-ordering preservation.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "lsh/lsh.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace imars {
namespace {

using lsh::RandomHyperplaneLsh;
using tensor::Vector;

Vector random_unit(std::size_t dim, util::Xoshiro256& rng) {
  Vector v(dim);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  const float n = tensor::norm(v);
  for (auto& x : v) x /= n;
  return v;
}

TEST(Lsh, DeterministicForSameSeed) {
  RandomHyperplaneLsh a(8, 64, 123), b(8, 64, 123);
  util::Xoshiro256 rng(1);
  const Vector v = random_unit(8, rng);
  EXPECT_EQ(a.encode(v), b.encode(v));
}

TEST(Lsh, DiffersAcrossSeeds) {
  RandomHyperplaneLsh a(8, 64, 123), b(8, 64, 124);
  util::Xoshiro256 rng(2);
  const Vector v = random_unit(8, rng);
  EXPECT_NE(a.encode(v), b.encode(v));
}

TEST(Lsh, EncodeChecksDimension) {
  RandomHyperplaneLsh h(8, 16, 1);
  EXPECT_THROW(h.encode(Vector(7, 0.0f)), Error);
}

TEST(Lsh, IdenticalVectorsCollide) {
  RandomHyperplaneLsh h(16, 256, 7);
  util::Xoshiro256 rng(3);
  const Vector v = random_unit(16, rng);
  EXPECT_EQ(h.encode(v).hamming(h.encode(v)), 0u);
}

TEST(Lsh, ScalingInvariance) {
  RandomHyperplaneLsh h(16, 128, 9);
  util::Xoshiro256 rng(4);
  const Vector v = random_unit(16, rng);
  Vector scaled(v);
  for (auto& x : scaled) x *= 37.5f;
  EXPECT_EQ(h.encode(v), h.encode(scaled));
}

TEST(Lsh, OppositeVectorsAreComplement) {
  RandomHyperplaneLsh h(16, 128, 10);
  util::Xoshiro256 rng(5);
  const Vector v = random_unit(16, rng);
  Vector neg(v);
  for (auto& x : neg) x = -x;
  // sign(w.v) flips except exactly-zero dots (measure zero).
  EXPECT_EQ(h.encode(v).hamming(h.encode(neg)), h.bits());
}

// Property: E[hamming] = bits * theta / pi. Build vector pairs at a known
// angle and check the empirical mean across many plane draws.
class LshCollision : public ::testing::TestWithParam<double> {};

TEST_P(LshCollision, HammingMatchesAngleTheory) {
  const double theta = GetParam();
  const std::size_t dim = 24;
  const std::size_t bits = 256;

  util::Xoshiro256 rng(42);
  double total = 0.0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    RandomHyperplaneLsh h(dim, bits, 1000 + static_cast<std::uint64_t>(t));
    // Construct a pair at angle theta: v, and v rotated by theta in the
    // plane spanned by (v, u_perp).
    const Vector v = random_unit(dim, rng);
    Vector u = random_unit(dim, rng);
    const float proj = tensor::dot(u, v);
    for (std::size_t i = 0; i < dim; ++i) u[i] -= proj * v[i];
    const float un = tensor::norm(u);
    for (auto& x : u) x /= un;
    Vector w(dim);
    for (std::size_t i = 0; i < dim; ++i)
      w[i] = static_cast<float>(std::cos(theta)) * v[i] +
             static_cast<float>(std::sin(theta)) * u[i];
    total += static_cast<double>(h.encode(v).hamming(h.encode(w)));
  }
  const double mean = total / trials;
  const double expected = static_cast<double>(bits) * theta / std::numbers::pi;
  // Binomial stddev ~ sqrt(bits)/2 ~ 8; averaged over 40 trials ~ 1.3.
  EXPECT_NEAR(mean, expected, 6.0) << "theta = " << theta;
}

INSTANTIATE_TEST_SUITE_P(Angles, LshCollision,
                         ::testing::Values(0.1, 0.3, 0.5, 0.8, 1.2, 1.6, 2.2,
                                           2.8));

TEST(Lsh, EstimateCosineInvertsExpectedHamming) {
  RandomHyperplaneLsh h(8, 256, 11);
  for (double theta : {0.2, 0.7, 1.3}) {
    const double d = h.expected_hamming(theta);
    EXPECT_NEAR(h.estimate_angle(static_cast<std::size_t>(std::lround(d))),
                theta, 0.02);
    EXPECT_NEAR(h.estimate_cosine(static_cast<std::size_t>(std::lround(d))),
                std::cos(theta), 0.02);
  }
}

// Property: Hamming distance preserves cosine *ordering* in expectation —
// the justification for the Sec III-B substitution. Spearman correlation
// between cosine distance and Hamming distance should be strongly positive.
TEST(Lsh, HammingPreservesCosineOrdering) {
  const std::size_t dim = 32;
  const std::size_t bits = 256;
  RandomHyperplaneLsh h(dim, bits, 77);
  util::Xoshiro256 rng(6);

  const Vector query = random_unit(dim, rng);
  const auto qsig = h.encode(query);

  std::vector<double> cos_dist, ham_dist;
  for (int i = 0; i < 200; ++i) {
    const Vector v = random_unit(dim, rng);
    cos_dist.push_back(1.0 - tensor::cosine(query, v));
    ham_dist.push_back(static_cast<double>(qsig.hamming(h.encode(v))));
  }
  // Random 32-d unit vectors cluster near 90 degrees, so per-pair Hamming
  // noise (sigma ~ 8 bits of 256) caps the rank correlation below 1.
  EXPECT_GT(util::spearman(cos_dist, ham_dist), 0.75);
}

// Longer signatures estimate angles with lower variance.
TEST(Lsh, LongerSignaturesReduceVariance) {
  const std::size_t dim = 16;
  util::Xoshiro256 rng(8);

  const auto variance_for = [&](std::size_t bits) {
    double sum = 0.0, sum2 = 0.0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
      RandomHyperplaneLsh h(dim, bits, 500 + static_cast<std::uint64_t>(t));
      const Vector a = random_unit(dim, rng);
      const Vector b = random_unit(dim, rng);
      const double frac =
          static_cast<double>(h.encode(a).hamming(h.encode(b))) /
          static_cast<double>(bits);
      sum += frac;
      sum2 += frac * frac;
    }
    return sum2 / trials - (sum / trials) * (sum / trials);
  };

  EXPECT_LT(variance_for(512), variance_for(32));
}

}  // namespace
}  // namespace imars
