// Tests for the Sec III-B embedding-table mapping and the area model,
// including the Table I configurations.
#include <gtest/gtest.h>

#include "core/area.hpp"
#include "core/config.hpp"
#include "core/mapping.hpp"
#include "data/criteo.hpp"
#include "data/movielens.hpp"
#include "util/error.hpp"

namespace imars {
namespace {

using core::ArchConfig;
using core::EtMapping;

TEST(Mapping, NextPow2) {
  EXPECT_EQ(core::next_pow2(1), 1u);
  EXPECT_EQ(core::next_pow2(2), 2u);
  EXPECT_EQ(core::next_pow2(3), 4u);
  EXPECT_EQ(core::next_pow2(118), 128u);  // the paper's example
  EXPECT_EQ(core::next_pow2(128), 128u);
  EXPECT_THROW(core::next_pow2(0), Error);
}

TEST(Mapping, CmasForRowsCeilDivision) {
  const EtMapping m(ArchConfig{});
  EXPECT_EQ(m.cmas_for_rows(1), 1u);
  EXPECT_EQ(m.cmas_for_rows(256), 1u);
  EXPECT_EQ(m.cmas_for_rows(257), 2u);
  // Paper: 30,000 entries / 256 rows = 118 CMAs.
  EXPECT_EQ(m.cmas_for_rows(30000), 118u);
  EXPECT_THROW(m.cmas_for_rows(0), Error);
}

TEST(Mapping, Pow2RoundingMatchesPaperExample) {
  const EtMapping m(ArchConfig{}, /*round_pow2=*/true);
  // "118 CMAs ... rounded up to the nearest power-of-two value, i.e., 128."
  EXPECT_EQ(m.cmas_for_rows(30000), 128u);
}

TEST(Mapping, MatsForCmas) {
  const EtMapping m(ArchConfig{});  // C = 32
  EXPECT_EQ(m.mats_for_cmas(1), 1u);
  EXPECT_EQ(m.mats_for_cmas(32), 1u);
  EXPECT_EQ(m.mats_for_cmas(33), 2u);
  // Paper: 118 CMAs -> 4 mats (M = 4) per Criteo bank.
  EXPECT_EQ(m.mats_for_cmas(118), 4u);
}

TEST(Mapping, CriteoMatchesTableI) {
  const data::CriteoSynth ds(data::CriteoConfig{.num_samples = 1, .seed = 1,
                                                .base_ctr = 0.25});
  const EtMapping m(ArchConfig{});
  const auto report = m.map(ds.schema());

  // Table I: 26 banks, one per sparse feature.
  EXPECT_EQ(report.active_banks, 26u);
  // Largest feature: 30,000 rows -> 118 CMAs -> 4 mats.
  std::size_t max_cmas = 0, max_mats = 0;
  for (const auto& t : report.tables) {
    max_cmas = std::max(max_cmas, t.total_cmas());
    max_mats = std::max(max_mats, t.mats);
  }
  EXPECT_EQ(max_cmas, 118u);
  EXPECT_EQ(max_mats, 4u);
  // Our synthetic cardinalities include several 30k tables; the paper's
  // Table I instead assumes uniform 28,000-row hashed tables. Same order,
  // exact equality under the paper's uniform-hash assumption (below).
  EXPECT_GT(report.active_cmas, 400u);
  EXPECT_LE(report.active_cmas, 26u * 118u);
  EXPECT_GE(report.active_mats, 26u);
  EXPECT_LE(report.active_mats, 26u * 4u);
}

TEST(Mapping, CriteoUniformHashReproducesTableIExactly) {
  // Table I: "# Row per ET 28000" -> 110 CMAs and 4 mats per feature,
  // totalling 26 banks / 104 mats / 2860 CMAs.
  const data::CriteoSynth ds(data::CriteoConfig{.num_samples = 1, .seed = 1,
                                                .base_ctr = 0.25});
  data::DatasetSchema hashed = ds.schema();
  for (auto& f : hashed.user_item) f.cardinality = 28000;

  const EtMapping m(ArchConfig{});
  const auto report = m.map(hashed);
  EXPECT_EQ(report.active_banks, 26u);
  EXPECT_EQ(report.active_mats, 104u);
  EXPECT_EQ(report.active_cmas, 2860u);
}

TEST(Mapping, MovieLensMatchesTableIShape) {
  data::MovieLensConfig cfg;  // full-size defaults: 6040 users, 3952 items
  const data::MovieLensSynth ds(cfg);
  const EtMapping m(ArchConfig{});
  const auto report = m.map(ds.schema());

  // Table I: 7 active banks (6 UIETs + ItET).
  EXPECT_EQ(report.active_banks, 7u);

  // ItET: 3952 rows -> 16 data CMAs + 16 signature CMAs (256-bit LSH
  // doubles the per-entry storage: "requires 2 CMAs to store a single
  // entry").
  const auto& itet = report.tables.back();
  EXPECT_TRUE(itet.is_item_table);
  EXPECT_EQ(itet.data_cmas, 16u);
  EXPECT_EQ(itet.sig_cmas, 16u);

  // user_id table: 6040 rows -> 24 CMAs, one mat.
  const auto& user_id = report.tables[4];
  EXPECT_EQ(user_id.rows, 6040u);
  EXPECT_EQ(user_id.data_cmas, 24u);
  EXPECT_EQ(user_id.mats, 1u);

  // Totals in the neighbourhood of Table I's 8 mats / 54 CMAs (the paper
  // appears to omit sub-CMA tables from its count; we report all of them).
  EXPECT_GE(report.active_mats, 7u);
  EXPECT_LE(report.active_mats, 9u);
  EXPECT_GE(report.active_cmas, 54u);
  EXPECT_LE(report.active_cmas, 90u);
}

TEST(Mapping, RejectsOversizedTable) {
  ArchConfig arch;
  arch.mats_per_bank = 1;  // tiny bank: 32 CMAs = 8192 rows
  const EtMapping m(arch);
  data::DatasetSchema schema;
  schema.user_item = {{"huge", 10000, 1, data::StageUse::kShared}};
  EXPECT_THROW(m.map(schema), Error);
}

TEST(Mapping, RejectsTooManyFeatures) {
  ArchConfig arch;
  arch.banks = 2;
  const EtMapping m(arch);
  data::DatasetSchema schema;
  for (int i = 0; i < 3; ++i)
    schema.user_item.push_back({"f" + std::to_string(i), 10, 1,
                                data::StageUse::kShared});
  EXPECT_THROW(m.map(schema), Error);
}

TEST(Mapping, BanksAreExclusivePerFeature) {
  const EtMapping m(ArchConfig{});
  data::DatasetSchema schema;
  for (int i = 0; i < 4; ++i)
    schema.user_item.push_back({"f" + std::to_string(i), 100, 1,
                                data::StageUse::kShared});
  const auto report = m.map(schema);
  for (std::size_t i = 0; i < report.tables.size(); ++i)
    EXPECT_EQ(report.tables[i].bank, i);
}

// ---------- Area model -----------------------------------------------------------

TEST(Area, ScalesWithDimensioning) {
  const auto profile = device::DeviceProfile::fefet45();
  ArchConfig small;
  small.banks = 8;
  ArchConfig big = small;
  big.banks = 32;
  const auto a = core::chip_area(small, profile, 10);
  const auto b = core::chip_area(big, profile, 10);
  EXPECT_NEAR(b.cmas / a.cmas, 4.0, 1e-9);
  EXPECT_GT(b.total(), a.total());
}

TEST(Area, FanInGrowsTreeArea) {
  const auto profile = device::DeviceProfile::fefet45();
  ArchConfig narrow;
  narrow.bank_fan_in = 4;
  ArchConfig wide = narrow;
  wide.bank_fan_in = 16;
  EXPECT_GT(core::chip_area(wide, profile, 0).bank_trees,
            core::chip_area(narrow, profile, 0).bank_trees);
}

TEST(Area, CmosCellsAreBigger) {
  ArchConfig arch;
  const auto fefet = core::chip_area(arch, device::DeviceProfile::fefet45(), 0);
  const auto cmos = core::chip_area(arch, device::DeviceProfile::cmos45(), 0);
  EXPECT_GT(cmos.cmas, 2.0 * fefet.cmas);
}

}  // namespace
}  // namespace imars
