// Unit + property tests for the nn module: gradient checks, training
// convergence, embedding pooling, losses.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/embedding.hpp"
#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using nn::Activation;
using nn::Dense;
using nn::EmbeddingTable;
using nn::Mlp;
using nn::Pooling;
using tensor::Vector;

// Numerical gradient check of a Dense layer: perturb each weight and compare
// the finite difference of a scalar loss with the analytic gradient.
TEST(Dense, WeightGradientMatchesFiniteDifference) {
  util::Xoshiro256 rng(1);
  Dense layer(4, 3, Activation::kRelu, rng);
  const Vector x = {0.5f, -1.0f, 2.0f, 0.25f};

  // Loss = sum(outputs).
  const auto loss_of = [&](Dense& l) {
    const Vector y = l.infer(x);
    float s = 0.0f;
    for (float v : y) s += v;
    return s;
  };

  layer.forward(x);
  layer.backward(Vector(3, 1.0f));
  const auto& analytic = layer.weight_grad();

  const float eps = 1e-3f;
  for (std::size_t o = 0; o < 3; ++o) {
    for (std::size_t i = 0; i < 4; ++i) {
      Dense probe = layer;
      probe.mutable_weight().at(o, i) += eps;
      const float up = loss_of(probe);
      probe.mutable_weight().at(o, i) -= 2 * eps;
      const float down = loss_of(probe);
      const float numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(analytic.at(o, i), numeric, 5e-2f)
          << "weight (" << o << "," << i << ")";
    }
  }
}

TEST(Dense, InputGradientMatchesFiniteDifference) {
  util::Xoshiro256 rng(2);
  Dense layer(5, 2, Activation::kSigmoid, rng);
  Vector x = {0.1f, -0.2f, 0.3f, 0.7f, -0.5f};

  const auto loss_of = [&](const Vector& in) {
    const Vector y = layer.infer(in);
    return y[0] + 2.0f * y[1];
  };

  layer.forward(x);
  const Vector gin = layer.backward(Vector{1.0f, 2.0f});

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    Vector up = x, down = x;
    up[i] += eps;
    down[i] -= eps;
    const float numeric = (loss_of(up) - loss_of(down)) / (2 * eps);
    EXPECT_NEAR(gin[i], numeric, 5e-3f) << "input " << i;
  }
}

TEST(Dense, BackwardWithoutForwardThrows) {
  util::Xoshiro256 rng(3);
  Dense layer(2, 2, Activation::kIdentity, rng);
  EXPECT_THROW(layer.backward(Vector{1.0f, 1.0f}), Error);
}

TEST(Dense, ForwardChecksDimensions) {
  util::Xoshiro256 rng(4);
  Dense layer(3, 2, Activation::kIdentity, rng);
  EXPECT_THROW(layer.forward(Vector{1.0f}), Error);
}

TEST(Dense, SgdStepReducesLoss) {
  util::Xoshiro256 rng(5);
  Dense layer(2, 1, Activation::kIdentity, rng);
  const Vector x = {1.0f, -1.0f};
  const float target = 3.0f;
  float prev = 1e9f;
  for (int step = 0; step < 50; ++step) {
    const float y = layer.forward(x)[0];
    const float loss = 0.5f * (y - target) * (y - target);
    layer.backward(Vector{y - target});
    layer.apply_sgd(0.1f);
    if (step > 0) {
      EXPECT_LE(loss, prev + 1e-5f);
    }
    prev = loss;
  }
  EXPECT_NEAR(layer.infer(x)[0], target, 1e-3f);
}

TEST(Mlp, DimsAndParameterCount) {
  util::Xoshiro256 rng(6);
  Mlp mlp({8, 16, 4}, Activation::kIdentity, rng);
  EXPECT_EQ(mlp.in_dim(), 8u);
  EXPECT_EQ(mlp.out_dim(), 4u);
  EXPECT_EQ(mlp.layer_count(), 2u);
  EXPECT_EQ(mlp.parameter_count(), 8u * 16 + 16 + 16 * 4 + 4);
}

TEST(Mlp, NeedsAtLeastTwoDims) {
  util::Xoshiro256 rng(7);
  EXPECT_THROW(Mlp({5}, Activation::kIdentity, rng), Error);
}

TEST(Mlp, InferMatchesForward) {
  util::Xoshiro256 rng(8);
  Mlp mlp({4, 8, 2}, Activation::kSigmoid, rng);
  const Vector x = {0.1f, 0.2f, -0.3f, 0.4f};
  const Vector a = mlp.forward(x);
  const Vector b = mlp.infer(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Mlp, LearnsXor) {
  util::Xoshiro256 rng(42);
  Mlp mlp({2, 8, 1}, Activation::kSigmoid, rng);
  const std::vector<std::pair<Vector, float>> data = {
      {{0, 0}, 0}, {{0, 1}, 1}, {{1, 0}, 1}, {{1, 1}, 0}};
  for (int epoch = 0; epoch < 3000; ++epoch) {
    for (const auto& [x, t] : data) {
      const float p = mlp.forward(x)[0];
      float g = 0.0f;
      nn::bce_loss(p, t, &g);
      mlp.backward(Vector{g});
      mlp.apply_sgd(0.5f);
    }
  }
  for (const auto& [x, t] : data) {
    const float p = mlp.infer(x)[0];
    EXPECT_NEAR(p, t, 0.25f) << "(" << x[0] << "," << x[1] << ")";
  }
}

// ---------- EmbeddingTable ---------------------------------------------------

TEST(Embedding, LookupPooledSumMeanConcat) {
  util::Xoshiro256 rng(9);
  EmbeddingTable t(4, 2, rng);
  t.set_row(0, Vector{1, 2});
  t.set_row(1, Vector{3, 4});
  const std::size_t idx[2] = {0, 1};

  EXPECT_EQ(t.lookup_pooled(idx, Pooling::kSum), (Vector{4, 6}));
  EXPECT_EQ(t.lookup_pooled(idx, Pooling::kMean), (Vector{2, 3}));
  EXPECT_EQ(t.lookup_pooled(idx, Pooling::kConcat), (Vector{1, 2, 3, 4}));
}

TEST(Embedding, EmptySumIsZeroConcatThrows) {
  util::Xoshiro256 rng(10);
  EmbeddingTable t(4, 3, rng);
  EXPECT_EQ(t.lookup_pooled({}, Pooling::kSum), Vector(3, 0.0f));
  EXPECT_THROW(t.lookup_pooled({}, Pooling::kConcat), Error);
}

TEST(Embedding, OutOfRangeLookupThrows) {
  util::Xoshiro256 rng(11);
  EmbeddingTable t(4, 2, rng);
  const std::size_t idx[1] = {4};
  EXPECT_THROW(t.lookup_pooled(idx, Pooling::kSum), Error);
}

TEST(Embedding, GradientDistributesOverMeanPooling) {
  util::Xoshiro256 rng(12);
  EmbeddingTable t(3, 2, rng);
  t.set_row(0, Vector{0, 0});
  t.set_row(1, Vector{0, 0});
  const std::size_t idx[2] = {0, 1};
  const Vector grad = {2.0f, 4.0f};
  t.accumulate_grad(idx, Pooling::kMean, grad);
  t.apply_sgd(1.0f);
  // Each row receives grad/2 and moves by -lr * grad/2.
  EXPECT_EQ(Vector(t.row(0).begin(), t.row(0).end()), (Vector{-1.0f, -2.0f}));
  EXPECT_EQ(Vector(t.row(1).begin(), t.row(1).end()), (Vector{-1.0f, -2.0f}));
}

TEST(Embedding, TrainingPullsEmbeddingTowardTarget) {
  util::Xoshiro256 rng(13);
  EmbeddingTable t(2, 4, rng);
  const Vector target = {1.0f, -1.0f, 0.5f, 0.0f};
  const std::size_t idx[1] = {0};
  for (int step = 0; step < 200; ++step) {
    const Vector e = t.lookup_pooled(idx, Pooling::kSum);
    Vector grad(4);
    for (int c = 0; c < 4; ++c) grad[c] = e[c] - target[c];
    t.accumulate_grad(idx, Pooling::kSum, grad);
    t.apply_sgd(0.1f);
  }
  const auto e = t.row(0);
  for (int c = 0; c < 4; ++c) EXPECT_NEAR(e[c], target[c], 1e-3f);
}

TEST(Embedding, QuantizedSnapshotRoundTrips) {
  util::Xoshiro256 rng(14);
  EmbeddingTable t(8, 4, rng);
  const auto q = t.quantized();
  EXPECT_EQ(q.rows(), 8u);
  EXPECT_EQ(q.cols(), 4u);
  for (std::size_t r = 0; r < 8; ++r) {
    const auto back = q.dequantize_row(r);
    const auto orig = t.row(r);
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_NEAR(back[c], orig[c], q.params().scale * 0.5f + 1e-6f);
  }
}

// ---------- Losses -----------------------------------------------------------

TEST(Loss, BceAtHalfIsLog2) {
  float g = 0.0f;
  EXPECT_NEAR(nn::bce_loss(0.5f, 1.0f, &g), std::log(2.0f), 1e-6f);
  EXPECT_NEAR(g, -2.0f, 1e-4f);  // (p - y) / (p(1-p)) = -0.5/0.25
}

TEST(Loss, BceGradientSign) {
  float g = 0.0f;
  nn::bce_loss(0.9f, 1.0f, &g);
  EXPECT_LT(g, 0.0f);  // increase p to reduce loss
  nn::bce_loss(0.9f, 0.0f, &g);
  EXPECT_GT(g, 0.0f);
}

TEST(Loss, SampledSoftmaxPrefersPositive) {
  const Vector user = {1.0f, 0.0f};
  const Vector pos = {1.0f, 0.0f};
  const std::vector<Vector> negs = {{-1.0f, 0.0f}, {0.0f, 1.0f}};
  Vector gu, gp;
  std::vector<Vector> gn;
  const float loss = nn::sampled_softmax_loss(user, pos, negs, &gu, &gp, &gn);
  EXPECT_GT(loss, 0.0f);
  // Gradient on the positive pushes it toward the user; on negatives away.
  EXPECT_LT(gp[0], 0.0f);
  EXPECT_GT(gn[1][0], 0.0f);  // second negative's first coord grows... sign:
}

TEST(Loss, SampledSoftmaxGradCheckOnUser) {
  util::Xoshiro256 rng(15);
  Vector user(3), pos(3);
  std::vector<Vector> negs(2, Vector(3));
  for (auto& v : user) v = static_cast<float>(rng.normal());
  for (auto& v : pos) v = static_cast<float>(rng.normal());
  for (auto& n : negs)
    for (auto& v : n) v = static_cast<float>(rng.normal());

  Vector gu, gp;
  std::vector<Vector> gn;
  nn::sampled_softmax_loss(user, pos, negs, &gu, &gp, &gn);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < user.size(); ++i) {
    Vector up = user, down = user;
    up[i] += eps;
    down[i] -= eps;
    Vector tu, tp;
    std::vector<Vector> tn;
    const float lu = nn::sampled_softmax_loss(up, pos, negs, &tu, &tp, &tn);
    const float ld = nn::sampled_softmax_loss(down, pos, negs, &tu, &tp, &tn);
    EXPECT_NEAR(gu[i], (lu - ld) / (2 * eps), 5e-3f);
  }
}

TEST(Loss, SampledSoftmaxLossDropsWhenPositiveCloser) {
  const Vector user = {1.0f, 0.0f};
  const std::vector<Vector> negs = {{0.0f, 1.0f}};
  Vector gu, gp;
  std::vector<Vector> gn;
  const float far =
      nn::sampled_softmax_loss(user, Vector{0.1f, 0.0f}, negs, &gu, &gp, &gn);
  const float close =
      nn::sampled_softmax_loss(user, Vector{2.0f, 0.0f}, negs, &gu, &gp, &gn);
  EXPECT_LT(close, far);
}

// ---------- LrSchedule --------------------------------------------------------

TEST(LrSchedule, StepDecay) {
  nn::LrSchedule s(1.0f, 0.5f, 10);
  EXPECT_FLOAT_EQ(s.at(0), 1.0f);
  EXPECT_FLOAT_EQ(s.at(9), 1.0f);
  EXPECT_FLOAT_EQ(s.at(10), 0.5f);
  EXPECT_FLOAT_EQ(s.at(25), 0.25f);
}

TEST(LrSchedule, RejectsBadParams) {
  EXPECT_THROW(nn::LrSchedule(0.0f, 0.5f, 10), Error);
  EXPECT_THROW(nn::LrSchedule(1.0f, 1.5f, 10), Error);
  EXPECT_THROW(nn::LrSchedule(1.0f, 0.5f, 0), Error);
}

}  // namespace
}  // namespace imars
