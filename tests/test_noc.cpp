// Tests for the NoC: RSC bus serialization, IBC shots, controller schedule.
#include <gtest/gtest.h>

#include "noc/bus.hpp"
#include "noc/controller.hpp"
#include "util/error.hpp"

namespace imars {
namespace {

using device::Component;
using device::DeviceProfile;
using device::EnergyLedger;
using noc::Controller;
using noc::IbcNetwork;
using noc::MatGroup;
using noc::RscBus;

struct Fixture {
  DeviceProfile profile = DeviceProfile::fefet45();
  EnergyLedger ledger;
};

TEST(RscBus, CyclesCeilDivide) {
  Fixture f;
  RscBus bus(f.profile, &f.ledger);
  EXPECT_EQ(bus.width_bits(), 256u);
  EXPECT_EQ(bus.cycles_for(0), 0u);
  EXPECT_EQ(bus.cycles_for(1), 1u);
  EXPECT_EQ(bus.cycles_for(32), 1u);   // exactly one 256-bit beat
  EXPECT_EQ(bus.cycles_for(33), 2u);
  EXPECT_EQ(bus.cycles_for(128), 4u);  // four beats for 128 B
}

TEST(RscBus, TransferLatencyAndEnergyScaleWithCycles) {
  Fixture f;
  RscBus bus(f.profile, &f.ledger);
  const auto lat = bus.transfer(128);
  EXPECT_DOUBLE_EQ(lat.value, 4 * f.profile.rsc_cycle.value);
  EXPECT_DOUBLE_EQ(f.ledger.energy(Component::kRscBus).value,
                   4 * f.profile.rsc_energy.value);
  EXPECT_EQ(bus.total_cycles(), 4u);
  bus.transfer(32);
  EXPECT_EQ(bus.total_cycles(), 5u);
}

TEST(Ibc, ShotsForWords) {
  Fixture f;
  IbcNetwork ibc(f.profile, &f.ledger);
  EXPECT_EQ(ibc.shot_bytes(), 128u);
  // One shot carries four 256-bit words.
  EXPECT_EQ(ibc.shots_for_words(0), 0u);
  EXPECT_EQ(ibc.shots_for_words(1), 1u);
  EXPECT_EQ(ibc.shots_for_words(4), 1u);
  EXPECT_EQ(ibc.shots_for_words(5), 2u);
  EXPECT_EQ(ibc.shots_for_words(104), 26u);
}

TEST(Ibc, TransferCharges) {
  Fixture f;
  IbcNetwork ibc(f.profile, &f.ledger);
  const auto lat = ibc.transfer_words(8);  // 2 shots
  EXPECT_DOUBLE_EQ(lat.value, 2 * f.profile.ibc_cycle.value);
  EXPECT_DOUBLE_EQ(f.ledger.energy(Component::kIbcNetwork).value,
                   2 * f.profile.ibc_energy.value);
  EXPECT_EQ(ibc.total_shots(), 2u);
}

// ---------- Controller --------------------------------------------------------

TEST(Controller, SingleBankFewMats) {
  Fixture f;
  Controller ctrl(f.profile, &f.ledger);
  const auto sched = ctrl.schedule(1, 3, 4);
  ASSERT_EQ(sched.size(), 1u);
  EXPECT_EQ(sched[0].bank, 0u);
  EXPECT_EQ(sched[0].first_mat, 0u);
  EXPECT_EQ(sched[0].count, 3u);
}

TEST(Controller, MultiRoundLeavesSlotForRunningSum) {
  Fixture f;
  Controller ctrl(f.profile, &f.ledger);
  // 10 mats at fan-in 4: groups of 4, 3, 3.
  const auto sched = ctrl.schedule(1, 10, 4);
  ASSERT_EQ(sched.size(), 3u);
  EXPECT_EQ(sched[0].count, 4u);
  EXPECT_EQ(sched[1].count, 3u);
  EXPECT_EQ(sched[2].count, 3u);
  EXPECT_EQ(sched[1].first_mat, 4u);
  EXPECT_EQ(sched[2].first_mat, 7u);
}

TEST(Controller, FixedOrderAcrossBanks) {
  Fixture f;
  Controller ctrl(f.profile, &f.ledger);
  const auto sched = ctrl.schedule(3, 4, 4);
  ASSERT_EQ(sched.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(sched[b].bank, b);  // deterministic bank order, no routing
    EXPECT_EQ(sched[b].first_mat, 0u);
    EXPECT_EQ(sched[b].count, 4u);
  }
}

TEST(Controller, ScheduleCoversEveryMatExactlyOnce) {
  Fixture f;
  Controller ctrl(f.profile, &f.ledger);
  const std::size_t mats = 26;
  const auto sched = ctrl.schedule(2, mats, 4);
  std::vector<int> seen(2 * mats, 0);
  for (const auto& g : sched)
    for (std::size_t m = g.first_mat; m < g.first_mat + g.count; ++m)
      seen[g.bank * mats + m]++;
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Controller, DecisionsCountAndCharge) {
  Fixture f;
  Controller ctrl(f.profile, &f.ledger);
  (void)ctrl.schedule(1, 10, 4);  // 3 groups
  EXPECT_EQ(ctrl.decisions(), 3u);
  EXPECT_DOUBLE_EQ(f.ledger.energy(Component::kController).value,
                   3 * f.profile.controller_energy.value);
}

TEST(Controller, RejectsDegenerateGroupSize) {
  Fixture f;
  Controller ctrl(f.profile, &f.ledger);
  EXPECT_THROW((void)ctrl.schedule(1, 4, 1), Error);
}

}  // namespace
}  // namespace imars
