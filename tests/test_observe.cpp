// Tests for the serving observability layer: the streaming histogram
// against exact sorted-sample percentiles, the metrics registry, the
// HostProfiler, the bit-identical-with-observation-on parity grid
// (observers must never perturb the run), streaming-mode ServeReport
// aggregates against record mode, trace well-formedness (check_trace on a
// real run and on hand-built malformed timelines), and the
// ShardUsage::total_busy composition contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/cpu_backend.hpp"
#include "core/backend_factory.hpp"
#include "data/movielens.hpp"
#include "recsys/youtube_dnn.hpp"
#include "serve/load_gen.hpp"
#include "serve/observe.hpp"
#include "serve/runtime.hpp"
#include "serve/trace.hpp"
#include "serve_test_util.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace imars {
namespace {

using device::Ns;
using serve::ArrivalProcess;
using serve::BatchSpan;
using serve::CloseTrigger;
using serve::DynamicBatcher;
using serve::DynamicBatcherConfig;
using serve::HostProfiler;
using serve::LoadGenConfig;
using serve::LoadGenerator;
using serve::MetricsRegistry;
using serve::ObserverSink;
using serve::QosBatcher;
using serve::QosBatcherConfig;
using serve::QosClassConfig;
using serve::Request;
using serve::ServingConfig;
using serve::ServingRuntime;
using serve::StageSpan;
using serve::StreamingHistogram;
using serve::TraceEvent;
using serve::TraceLog;

// --- StreamingHistogram -----------------------------------------------------

TEST(StreamingHistogram, EmptyAndTinySamplesMatchPinnedSemantics) {
  StreamingHistogram h(0.01);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);  // empty set -> 0.0
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  // n = 1: every percentile is the sample itself (rank p/100 * 0 = 0).
  h.record(123.5);
  for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(h.percentile(p), 123.5) << "p" << p;
  EXPECT_DOUBLE_EQ(h.mean(), 123.5);

  // n = 2: the ends are exact, the midpoint interpolates exactly between
  // them — identical to util::percentile on the raw sample.
  h.record(1000.0);
  const std::vector<double> xs = {123.5, 1000.0};
  for (const double p : {0.0, 25.0, 50.0, 95.0, 100.0})
    EXPECT_DOUBLE_EQ(h.percentile(p), util::percentile(xs, p)) << "p" << p;
}

TEST(StreamingHistogram, ZeroAndNegativeSamplesLandInTheZeroBucket) {
  StreamingHistogram h(0.01);
  h.record(0.0);
  h.record(-5.0);
  h.record(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
  // The middle rank is the zero-bucket representative: clamped to >= min.
  EXPECT_GE(h.percentile(50.0), -5.0);
  EXPECT_LE(h.percentile(50.0), 10.0);
}

TEST(StreamingHistogram, RandomizedStreamsMatchExactPercentiles) {
  // The acceptance bound: incremental percentiles within the bucket's
  // relative error of util::percentile over the retained sample. The
  // bucket representative is within rel_err of every member; linear
  // interpolation mixes two adjacent ranks, so 2.5 * rel_err is a safe
  // envelope for rel_err = 1%.
  const double rel_err = 0.01;
  const double tol = 2.5 * rel_err;
  for (const std::uint64_t seed : {1u, 7u, 21u}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                std::size_t{10}, std::size_t{1000}}) {
      for (const bool heavy_tail : {false, true}) {
        util::Xoshiro256 rng(seed * 1000 + n + (heavy_tail ? 1 : 0));
        StreamingHistogram h(rel_err);
        std::vector<double> xs;
        for (std::size_t i = 0; i < n; ++i) {
          // Uniform latencies, or a lognormal-ish heavy tail spanning six
          // decades — the regime log-bucketing exists for.
          const double x = heavy_tail ? std::exp(rng.uniform(0.0, 14.0))
                                      : rng.uniform(1.0, 1.0e6);
          xs.push_back(x);
          h.record(x);
        }
        ASSERT_EQ(h.count(), n);
        for (const double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
          const double exact = util::percentile(xs, p);
          const double approx = h.percentile(p);
          EXPECT_NEAR(approx, exact, tol * exact)
              << "seed=" << seed << " n=" << n << " heavy=" << heavy_tail
              << " p" << p;
        }
        // The side-tracked aggregates are exact.
        double sum = 0.0;
        for (double x : xs) sum += x;
        EXPECT_DOUBLE_EQ(h.sum(), sum);
        EXPECT_DOUBLE_EQ(h.min(), *std::min_element(xs.begin(), xs.end()));
        EXPECT_DOUBLE_EQ(h.max(), *std::max_element(xs.begin(), xs.end()));
      }
    }
  }
}

TEST(StreamingHistogram, MergeEqualsSingleStream) {
  util::Xoshiro256 rng(99);
  StreamingHistogram whole(0.01), left(0.01), right(0.01);
  for (std::size_t i = 0; i < 500; ++i) {
    const double x = std::exp(rng.uniform(0.0, 12.0));
    whole.record(x);
    (i % 2 == 0 ? left : right).record(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  for (const double p : {50.0, 95.0, 99.0})
    EXPECT_DOUBLE_EQ(left.percentile(p), whole.percentile(p)) << "p" << p;
}

TEST(StreamingHistogram, RejectsBadConfigs) {
  EXPECT_THROW(StreamingHistogram h(0.0), std::runtime_error);
  EXPECT_THROW(StreamingHistogram h(-0.1), std::runtime_error);
  EXPECT_THROW(StreamingHistogram h(1.0), std::runtime_error);
  StreamingHistogram a(0.01), b(0.02);
  EXPECT_THROW(a.merge(b), std::runtime_error);
}

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndHistograms) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter("missing"), 0u);
  reg.add_counter("batches");
  reg.add_counter("batches", 4);
  EXPECT_EQ(reg.counter("batches"), 5u);
  reg.set_gauge("depth", 3.0);
  reg.set_gauge("depth", 7.0);  // last value wins
  EXPECT_DOUBLE_EQ(reg.gauges().at("depth"), 7.0);
  reg.histogram("lat").record(10.0);
  reg.histogram("lat").record(30.0);  // same object on re-lookup
  EXPECT_EQ(reg.histograms().at("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(reg.histograms().at("lat").mean(), 20.0);
}

// --- HostProfiler -----------------------------------------------------------

struct HostSpanRecorder final : ObserverSink {
  std::vector<std::string> names;
  std::vector<double> durs;
  void on_host_span(std::string_view name, double start_us,
                    double dur_us) override {
    (void)start_us;
    names.emplace_back(name);
    durs.push_back(dur_us);
  }
};

TEST(HostProfiler, ScopesReportAndAccumulate) {
  HostSpanRecorder sink;
  HostProfiler prof;
  prof.enable(&sink);
  {
    HostProfiler::Scope a(prof, "outer");
    HostProfiler::Scope b(prof, "inner");
  }
  ASSERT_EQ(sink.names.size(), 2u);
  EXPECT_EQ(sink.names[0], "inner");  // destroyed innermost-first
  EXPECT_EQ(sink.names[1], "outer");
  for (double d : sink.durs) EXPECT_GE(d, 0.0);
  EXPECT_EQ(prof.total_us().size(), 2u);
  EXPECT_GE(prof.total_us().at("outer"), prof.total_us().at("inner"));

  // Disabled profiler: scopes are inert.
  HostProfiler off;
  { HostProfiler::Scope s(off, "never"); }
  EXPECT_TRUE(off.total_us().empty());
}

// --- CloseTrigger attribution ----------------------------------------------

Request make_request(std::size_t id, double t, std::size_t cls = 0) {
  Request r;
  r.id = id;
  r.user = id;
  r.client = id;
  r.qos_class = cls;
  r.enqueue = Ns{t};
  return r;
}

TEST(CloseTriggerTelemetry, BatcherAttributesEveryCloseReason) {
  DynamicBatcherConfig cfg;
  cfg.max_batch = 2;
  cfg.max_wait = Ns{100.0};
  DynamicBatcher b(cfg);
  b.add(make_request(0, 0.0));
  b.add(make_request(1, 1.0));
  auto size_batch = b.poll(Ns{1.0});
  ASSERT_TRUE(size_batch.has_value());
  EXPECT_EQ(size_batch->trigger, CloseTrigger::kSize);

  b.add(make_request(2, 10.0));
  auto deadline_batch = b.poll(Ns{110.0});
  ASSERT_TRUE(deadline_batch.has_value());
  EXPECT_EQ(deadline_batch->trigger, CloseTrigger::kDeadline);

  b.add(make_request(3, 120.0));
  auto flush_batch = b.flush(Ns{120.0});
  ASSERT_TRUE(flush_batch.has_value());
  EXPECT_EQ(flush_batch->trigger, CloseTrigger::kFlush);
}

TEST(CloseTriggerTelemetry, QosBatcherDistinguishesPreemptiveClose) {
  QosClassConfig urgent;
  urgent.name = "urgent";
  urgent.max_batch = 8;
  urgent.max_wait = Ns{1000.0};
  urgent.deadline = Ns{500.0};          // slack 300 < max_wait: preemptive
  urgent.service_estimate = Ns{200.0};
  QosClassConfig lax;
  lax.name = "lax";
  lax.max_batch = 8;
  lax.max_wait = Ns{100.0};  // plain deadline trigger, no SLO
  QosBatcherConfig cfg;
  cfg.classes = {urgent, lax};
  QosBatcher b(cfg);
  b.add(make_request(0, 0.0, 0));
  auto pre = b.poll(Ns{300.0});
  ASSERT_TRUE(pre.has_value());
  EXPECT_EQ(pre->trigger, CloseTrigger::kPreemptive);
  b.add(make_request(1, 400.0, 1));
  auto dl = b.poll(Ns{500.0});
  ASSERT_TRUE(dl.has_value());
  EXPECT_EQ(dl->trigger, CloseTrigger::kDeadline);
}

// --- runtime grid fixture ---------------------------------------------------

struct ObserveFixture {
  ObserveFixture() {
    data::MovieLensConfig dcfg;
    dcfg.num_users = 60;
    dcfg.num_items = 90;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 141;
    ds = std::make_unique<data::MovieLensSynth>(dcfg);

    recsys::YoutubeDnnConfig mcfg;
    mcfg.seed = 143;
    model = std::make_unique<recsys::YoutubeDnn>(ds->schema(), mcfg);
    util::Xoshiro256 rng(147);
    model->train_filter_epoch(*ds, rng);
    model->train_rank_epoch(*ds, rng);

    for (std::size_t u = 0; u < ds->num_users(); ++u)
      users.push_back(model->make_context(*ds, u));

    cpu_cfg.candidates = 40;
    factory = core::cpu_backend_factory(*model, cpu_cfg);
  }

  struct RunOpts {
    std::size_t classes = 1;
    bool open = false;
    bool overlap = false;
    bool gated = false;
    bool streaming = false;
    bool self_profile = false;
    double update_fraction = 0.0;
    ObserverSink* sink = nullptr;
  };

  serve::ServeReport run(const RunOpts& o) {
    ServingConfig cfg;
    cfg.shards = 3;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{300000.0};
    cfg.cache.capacity_rows = 1024;
    cfg.overlap = o.overlap;
    cfg.max_inflight = 3;
    cfg.streaming_report = o.streaming;
    cfg.self_profile = o.self_profile;
    if (o.classes > 1) {
      QosClassConfig interactive;
      interactive.name = "interactive";
      interactive.max_batch = 2;
      interactive.max_wait = Ns{300000.0};
      interactive.deadline = Ns{150000.0};
      interactive.service_estimate = Ns{20000.0};
      interactive.weight = 2.0;
      QosClassConfig bulk;
      bulk.name = "bulk";
      bulk.max_batch = 4;
      bulk.max_wait = Ns{300000.0};
      bulk.weight = 4.0;
      QosClassConfig scavenger = bulk;
      scavenger.name = "scavenger";
      scavenger.weight = 0.0;
      cfg.qos.classes = {interactive, bulk, scavenger};
      if (o.gated) cfg.qos.admit_window = Ns{50000.0};
    }
    ServingRuntime rt(factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    if (o.sink != nullptr) rt.set_observer(o.sink);
    LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = 40;
    lg.num_users = users.size();
    lg.seed = 171;
    lg.update_fraction = o.update_fraction;
    if (o.classes > 1) lg.class_mix = {0.2, 0.7, 0.1};
    if (o.open) {
      lg.arrivals = ArrivalProcess::kOpenPoisson;
      lg.rate_qps = 2.0e5;
    }
    LoadGenerator gen(lg);
    return rt.run(gen, users);
  }

  std::unique_ptr<data::MovieLensSynth> ds;
  std::unique_ptr<recsys::YoutubeDnn> model;
  std::vector<recsys::UserContext> users;
  baseline::CpuBackendConfig cpu_cfg;
  core::BackendFactory factory;
};

// --- observation parity: the load-bearing contract --------------------------

TEST(ObserveRuntime, ReportsBitIdenticalWithObservationAttached) {
  ObserveFixture fx;
  for (const std::size_t classes : {std::size_t{1}, std::size_t{3}}) {
    for (const bool open : {false, true}) {
      for (const bool overlap : {false, true}) {
        ObserveFixture::RunOpts plain;
        plain.classes = classes;
        plain.open = open;
        plain.overlap = overlap;
        const auto unobserved = fx.run(plain);

        TraceLog trace;
        ObserveFixture::RunOpts observed = plain;
        observed.sink = &trace;
        observed.self_profile = true;
        const auto with_sink = fx.run(observed);

        serve_test::expect_reports_identical(unobserved, with_sink);
        EXPECT_GT(trace.events().size(), 0u)
            << "classes=" << classes << " open=" << open;
      }
    }
  }
}

TEST(ObserveRuntime, GatedRunBitIdenticalWithObservation) {
  ObserveFixture fx;
  ObserveFixture::RunOpts plain;
  plain.classes = 3;
  plain.open = true;
  plain.overlap = true;
  plain.gated = true;
  const auto unobserved = fx.run(plain);
  TraceLog trace;
  ObserveFixture::RunOpts observed = plain;
  observed.sink = &trace;
  const auto with_sink = fx.run(observed);
  serve_test::expect_reports_identical(unobserved, with_sink);
}

// --- trace well-formedness on a real run -------------------------------------

TEST(ObserveRuntime, TraceOfRealRunIsWellFormed) {
  ObserveFixture fx;
  TraceLog trace;
  ObserveFixture::RunOpts o;
  o.classes = 3;
  o.open = true;
  o.overlap = true;
  o.gated = true;
  o.self_profile = true;
  o.update_fraction = 0.2;  // write-back spans land on the ET tracks
  o.sink = &trace;
  const auto report = fx.run(o);
  trace.finalize();

  const serve::TraceCheck check = serve::check_trace(trace.events());
  for (const auto& p : check.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(check.ok);
  EXPECT_GT(check.unit_spans, 0u);
  EXPECT_EQ(check.batch_spans, report.batches);
  std::size_t trigger_sum = 0;
  for (const auto& [trigger, n] : check.trigger_counts) trigger_sum += n;
  EXPECT_EQ(trigger_sum, report.batches);

  // The registry audited the same run: per-trigger counters sum to the
  // batch total, spans were recorded, write traffic hit the ET tracks.
  const auto& reg = trace.registry();
  EXPECT_EQ(reg.counter("batches.total"), report.batches);
  EXPECT_GT(reg.counter("spans.stage"), 0u);
  EXPECT_GT(reg.counter("spans.write"), 0u);
  EXPECT_GT(report.updates, 0u);

  // Host self-profiling spans share the file on their own track.
  std::size_t host_spans = 0;
  for (const auto& e : trace.events())
    if (e.cat == "host") ++host_spans;
  EXPECT_GT(host_spans, 0u);
}

TEST(ObserveRuntime, WrittenTraceIsValidJsonArtifact) {
  ObserveFixture fx;
  TraceLog trace;
  ObserveFixture::RunOpts o;
  o.classes = 3;
  o.sink = &trace;
  (void)fx.run(o);
  const std::string path = "test_observe_trace.json";
  trace.write(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("serve.summary"), std::string::npos);
  std::remove(path.c_str());
}

// --- check_trace on malformed timelines --------------------------------------

TraceEvent unit_span(double ts, double dur, int pid = 10, int tid = 1) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kComplete;
  e.name = "stage";
  e.cat = "unit";
  e.ts_us = ts;
  e.dur_us = dur;
  e.pid = pid;
  e.tid = tid;
  return e;
}

TEST(TraceCheck, FlagsOverlappingUnitSpans) {
  std::vector<TraceEvent> events = {unit_span(0.0, 10.0), unit_span(5.0, 10.0)};
  const auto check = serve::check_trace(events);
  EXPECT_FALSE(check.ok);
  // Different tracks: no overlap.
  events[1].tid = 2;
  EXPECT_TRUE(serve::check_trace(events).ok);
}

TEST(TraceCheck, FlagsBrokenNestingAndNegativeExtents) {
  // A non-unit span poking out of its enclosing span is not a stack.
  TraceEvent outer = unit_span(0.0, 10.0);
  outer.cat = "batch";
  TraceEvent inner = unit_span(5.0, 10.0);  // ends at 15 > 10
  inner.cat = "batch";
  const std::vector<TraceEvent> events = {outer, inner};
  EXPECT_FALSE(serve::check_trace(events).ok);

  const std::vector<TraceEvent> bad = {unit_span(0.0, -1.0)};
  EXPECT_FALSE(serve::check_trace(bad).ok);
}

TEST(TraceCheck, FlagsUnpairedAsyncAndUnknownTriggers) {
  TraceEvent begin;
  begin.phase = TraceEvent::Phase::kAsyncBegin;
  begin.name = "cls";
  begin.cat = "batch.queue";
  begin.ts_us = 0.0;
  begin.pid = 1;
  begin.id = 7;
  begin.str_args = {{"trigger", "size"}};
  TraceEvent end = begin;
  end.phase = TraceEvent::Phase::kAsyncEnd;
  end.ts_us = 5.0;
  end.str_args.clear();

  EXPECT_TRUE(serve::check_trace(std::vector<TraceEvent>{begin, end}).ok);
  // Begin without end.
  EXPECT_FALSE(serve::check_trace(std::vector<TraceEvent>{begin}).ok);
  // End without begin.
  EXPECT_FALSE(serve::check_trace(std::vector<TraceEvent>{end}).ok);
  // Unknown close trigger.
  TraceEvent weird = begin;
  weird.str_args = {{"trigger", "cosmic-ray"}};
  TraceEvent weird_end = end;
  EXPECT_FALSE(
      serve::check_trace(std::vector<TraceEvent>{weird, weird_end}).ok);
}

TEST(TraceCheck, SummarizeAggregatesCompleteSpans) {
  std::vector<TraceEvent> events = {unit_span(0.0, 10.0), unit_span(20.0, 5.0),
                                    unit_span(30.0, 2.0, 11, 1)};
  events[2].name = "other";
  const auto totals = serve::summarize_trace(events);
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].name, "stage");  // 15us total beats 2us
  EXPECT_EQ(totals[0].count, 2u);
  EXPECT_DOUBLE_EQ(totals[0].total_us, 15.0);
  EXPECT_DOUBLE_EQ(totals[0].max_us, 10.0);
  EXPECT_EQ(serve::summarize_trace(events, 1).size(), 1u);
}

// --- streaming-mode reports --------------------------------------------------

TEST(ObserveRuntime, StreamingAggregatesMatchRecordMode) {
  ObserveFixture fx;
  for (const std::size_t classes : {std::size_t{1}, std::size_t{3}}) {
    ObserveFixture::RunOpts record_opts;
    record_opts.classes = classes;
    record_opts.open = true;
    const auto record = fx.run(record_opts);
    ObserveFixture::RunOpts stream_opts = record_opts;
    stream_opts.streaming = true;
    const auto stream = fx.run(stream_opts);

    ASSERT_TRUE(stream.streaming.enabled);
    EXPECT_TRUE(stream.queries.empty());  // no per-query retention
    ASSERT_EQ(stream.size(), record.size());
    EXPECT_EQ(stream.batches, record.batches);
    EXPECT_DOUBLE_EQ(stream.makespan.value, record.makespan.value);

    // Means and QPS are exact; percentiles within the histogram resolution.
    const double tol = 2.5 * stream.streaming.rel_err;
    EXPECT_DOUBLE_EQ(stream.mean_latency_ns(), record.mean_latency_ns());
    EXPECT_DOUBLE_EQ(stream.qps(), record.qps());
    EXPECT_DOUBLE_EQ(stream.mean_energy_pj(), record.mean_energy_pj());
    EXPECT_NEAR(stream.p50_latency_ns(), record.p50_latency_ns(),
                tol * record.p50_latency_ns());
    EXPECT_NEAR(stream.p95_latency_ns(), record.p95_latency_ns(),
                tol * record.p95_latency_ns());
    EXPECT_NEAR(stream.p99_latency_ns(), record.p99_latency_ns(),
                tol * record.p99_latency_ns());

    for (std::size_t c = 0; c < classes; ++c) {
      EXPECT_NEAR(stream.class_mean_latency_ns(c),
                  record.class_mean_latency_ns(c),
                  1e-9 * record.class_mean_latency_ns(c) + 1e-9)
          << "class " << c;
      EXPECT_NEAR(stream.class_p99_latency_ns(c),
                  record.class_p99_latency_ns(c),
                  tol * record.class_p99_latency_ns(c))
          << "class " << c;
      EXPECT_DOUBLE_EQ(stream.class_qps(c), record.class_qps(c));
      EXPECT_NEAR(stream.device_share(c), record.device_share(c), 1e-12)
          << "class " << c;
    }
    EXPECT_NEAR(stream.fairness_error(), record.fairness_error(), 1e-12);

    // Record-only views refuse in streaming mode instead of lying.
    EXPECT_THROW((void)stream.latencies_ns(), std::runtime_error);
    EXPECT_THROW((void)stream.class_latencies_ns(0), std::runtime_error);
    EXPECT_THROW((void)stream.device_share(0, Ns{1.0}), std::runtime_error);
  }
}

// --- ShardUsage::total_busy composition --------------------------------------

TEST(ObserveRuntime, TotalBusyComposesStageAndWritePaths) {
  serve::ShardUsage u;
  u.stage_busy = {Ns{2.0}, Ns{3.0}};
  u.write_busy = Ns{5.0};
  EXPECT_DOUBLE_EQ(u.total_busy().value, 10.0);

  // On a real write-back run the write path is busy, is EXCLUDED from the
  // stage-utilization views, and is counted exactly once by total_busy.
  ObserveFixture fx;
  ObserveFixture::RunOpts o;
  o.update_fraction = 0.3;
  const auto report = fx.run(o);
  ASSERT_GT(report.updates, 0u);
  bool some_write = false;
  for (std::size_t s = 0; s < report.shards.size(); ++s) {
    const auto& shard = report.shards[s];
    device::Ns stage_sum;
    for (const auto& st : shard.stage_busy) stage_sum += st;
    EXPECT_DOUBLE_EQ(shard.total_busy().value,
                     (stage_sum + shard.write_busy).value)
        << "shard " << s;
    some_write = some_write || shard.write_busy.value > 0.0;
    // rank_utilization reads only the last stage unit, never the write path.
    EXPECT_DOUBLE_EQ(report.rank_utilization(s),
                     shard.stage_busy.back().value / report.makespan.value);
  }
  EXPECT_TRUE(some_write);
}

// Companion to the stage_utilization unknown-stage contract (pinned in
// test_stage_pipeline.cpp): the REPORT-level lookup refuses unknown graph
// nodes too, rather than returning a silent 0.0.
TEST(ObserveRuntime, StageUtilizationRejectsUnknownStage) {
  ObserveFixture fx;
  const auto report = fx.run(ObserveFixture::RunOpts{});
  ASSERT_FALSE(report.stage_names.empty());
  EXPECT_THROW((void)report.stage_utilization(0, "no-such-stage"),
               std::runtime_error);
}

}  // namespace
}  // namespace imars
