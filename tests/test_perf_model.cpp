// Tests for the analytical performance model, including consistency with
// the functional machine and reproduction of the Table III iMARS numbers.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "core/calibration.hpp"
#include "core/perf_model.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using core::ArchConfig;
using core::EtLookupParams;
using core::PerfModel;
using device::DeviceProfile;
using tensor::Matrix;
using tensor::QMatrix;

struct Fixture {
  DeviceProfile profile = DeviceProfile::fefet45();
  ArchConfig arch;
  PerfModel model{arch, profile};
};

TEST(PerfModel, EtLookupMonotoneInEveryParameter) {
  Fixture f;
  EtLookupParams base;
  base.tables = 6;
  base.lookups_per_table = 8;
  base.mats_per_table = 1;
  base.active_cmas = 70;
  const auto c0 = f.model.et_lookup(base);

  auto more_lookups = base;
  more_lookups.lookups_per_table = 16;
  EXPECT_GT(f.model.et_lookup(more_lookups).latency.value, c0.latency.value);

  auto more_tables = base;
  more_tables.tables = 26;
  more_tables.active_cmas = 26 * 12;  // arrays scale with the tables touched
  // Banks are parallel: more tables only add RSC beats...
  EXPECT_GT(f.model.et_lookup(more_tables).latency.value, c0.latency.value);
  EXPECT_LT(f.model.et_lookup(more_tables).latency.value,
            2.0 * c0.latency.value);
  // ...but much more energy.
  EXPECT_GT(f.model.et_lookup(more_tables).energy.value, 1.5 * c0.energy.value);

  auto more_cmas = base;
  more_cmas.active_cmas = 2860;
  EXPECT_GT(f.model.et_lookup(more_cmas).energy.value, 10.0 * c0.energy.value);
  EXPECT_DOUBLE_EQ(f.model.et_lookup(more_cmas).latency.value,
                   c0.latency.value);  // peripherals cost energy, not time

  auto more_mats = base;
  more_mats.mats_per_table = 8;  // > fan-in 4: extra intra-bank rounds
  EXPECT_GT(f.model.et_lookup(more_mats).latency.value, c0.latency.value);
}

// The headline reproduction: with the paper's worst-case assumption
// (L = kWorstCaseLookupsPerTable), the model lands on Table III's iMARS
// latencies for all three workload points.
TEST(PerfModel, TableIIIMovieLensFilteringLatency) {
  Fixture f;
  EtLookupParams p;
  p.tables = 6;  // 5 UIETs + ItET
  p.lookups_per_table = core::kWorstCaseLookupsPerTable;
  p.mats_per_table = 1;
  p.active_cmas = 73;
  // Paper: 0.21 us.
  EXPECT_NEAR(f.model.et_lookup(p).latency.us(), 0.21, 0.04);
}

TEST(PerfModel, TableIIIMovieLensRankingLatency) {
  Fixture f;
  EtLookupParams p;
  p.tables = 7;  // 6 UIETs + ItET
  p.lookups_per_table = core::kWorstCaseLookupsPerTable;
  p.mats_per_table = 1;
  p.active_cmas = 74;
  // Paper: 0.21 us.
  EXPECT_NEAR(f.model.et_lookup(p).latency.us(), 0.21, 0.04);
}

TEST(PerfModel, TableIIICriteoRankingLatency) {
  Fixture f;
  EtLookupParams p;
  p.tables = 26;
  p.lookups_per_table = core::kWorstCaseLookupsPerTable;
  p.mats_per_table = 4;  // 118 CMAs span all 4 mats
  p.active_cmas = 2860;
  // Paper: 0.24 us.
  EXPECT_NEAR(f.model.et_lookup(p).latency.us(), 0.24, 0.06);
}

TEST(PerfModel, TableIIICriteoRankingEnergy) {
  Fixture f;
  EtLookupParams p;
  p.tables = 26;
  p.lookups_per_table = core::kWorstCaseLookupsPerTable;
  p.mats_per_table = 4;
  p.active_cmas = 2860;
  // Paper: 6.88 uJ; the peripheral calibration targets this point.
  EXPECT_NEAR(f.model.et_lookup(p).energy.uj(), 6.88, 0.8);
}

TEST(PerfModel, NnsIsO1InItems) {
  Fixture f;
  // Latency is one search regardless of array count; energy scales.
  EXPECT_DOUBLE_EQ(f.model.nns(16).latency.value,
                   f.model.nns(128).latency.value);
  EXPECT_LT(f.model.nns(16).energy.value, f.model.nns(128).energy.value);
  // Paper (Sec IV-C2): NNS latency ~ 6.97us / 3.8e4 ~ 0.18 ns + encode.
  EXPECT_LT(f.model.nns(16).latency.value, 2.0);
}

TEST(PerfModel, DnnTilesAndLatency) {
  Fixture f;
  // Paper filtering stack on 196-wide input: 3 layers, all single-tile.
  const std::size_t dims[] = {196, 128, 64, 32};
  EXPECT_EQ(f.model.dnn_tiles(dims), 3u);
  const auto c = f.model.dnn(dims);
  // 3 x (matmul + per-layer overhead): calibrated to ~2.34 us (2.69x GPU).
  EXPECT_NEAR(c.latency.us(), 2.34, 0.1);
}

TEST(PerfModel, DnnWideLayerNeedsMoreTiles) {
  Fixture f;
  const std::size_t dims[] = {383, 256, 64, 1};
  // Layer1: ceil(383/256) x ceil(256/128) = 2x2 = 4; layer2: 1x2... wait
  // layer2 is (256 -> 64): 1 row tile x 1 col tile; layer3 (64 -> 1): 1.
  EXPECT_EQ(f.model.dnn_tiles(dims), 4u + 1u + 1u);
}

TEST(PerfModel, TopkScalesWithCandidates) {
  Fixture f;
  EXPECT_LT(f.model.topk(10, 5).latency.value,
            f.model.topk(100, 5).latency.value);
  // Paper's GPU top-k is ~5 us; iMARS stays well below 1 us at 20 scores.
  EXPECT_LT(f.model.topk(20, 10).latency.us(), 1.0);
}

// Cross-check: the analytical worst-case ET model equals the functional
// machine's worst-case accounting for a single-mat table.
TEST(PerfModel, MatchesFunctionalMachineWorstCase) {
  Fixture f;
  core::ImarsAccelerator acc(f.arch, f.profile);
  util::Xoshiro256 rng(5);
  const QMatrix table = QMatrix::quantize(Matrix::randn(500, 32, 0.5f, rng));
  const auto id = acc.load_uiet("t", table);
  acc.reset_energy();

  const std::size_t L = 8;
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < L; ++i) indices.push_back(i * 37 % 500);
  const core::LookupRequest req{id, indices, true};
  recsys::OpCost functional;
  (void)acc.lookup_pooled(std::span(&req, 1),
                          core::TimingMode::kWorstCaseSameArray, &functional);

  EtLookupParams p;
  p.tables = 1;
  p.lookups_per_table = L;
  p.mats_per_table = 1;
  p.active_cmas = 2;  // ceil(500/256)
  const auto analytic = f.model.et_lookup(p);

  EXPECT_NEAR(functional.latency.value, analytic.latency.value, 1e-6);
  EXPECT_NEAR(functional.energy.value, analytic.energy.value, 1e-6);
}

}  // namespace
}  // namespace imars
