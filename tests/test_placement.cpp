// Tests for the row-placement extension (ArchConfig::RowPlacement):
// functional equivalence between layouts and the latency benefit of
// striping for multi-hot lookups.
#include <gtest/gtest.h>

#include "core/accelerator.hpp"
#include "lsh/lsh.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using core::ArchConfig;
using core::ImarsAccelerator;
using core::LookupRequest;
using core::RowPlacement;
using core::TimingMode;
using device::DeviceProfile;
using tensor::Matrix;
using tensor::QMatrix;

struct PlacementPair {
  PlacementPair() {
    seq_arch.placement = RowPlacement::kSequential;
    str_arch.placement = RowPlacement::kStriped;
  }

  DeviceProfile profile = DeviceProfile::fefet45();
  ArchConfig seq_arch;
  ArchConfig str_arch;
};

QMatrix random_table(std::size_t rows, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return QMatrix::quantize(Matrix::randn(rows, 32, 0.5f, rng));
}

TEST(Placement, LookupsFunctionallyIdenticalAcrossLayouts) {
  PlacementPair p;
  ImarsAccelerator seq(p.seq_arch, p.profile);
  ImarsAccelerator str(p.str_arch, p.profile);
  const QMatrix table = random_table(2000, 1);
  const auto sid = seq.load_uiet("t", table);
  const auto tid = str.load_uiet("t", table);

  util::Xoshiro256 rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::size_t> idx;
    for (int i = 0; i < 20; ++i) idx.push_back(rng.below(2000));
    const LookupRequest rs{sid, idx, true};
    const LookupRequest rt{tid, idx, true};
    const auto a =
        seq.lookup_pooled(std::span(&rs, 1), TimingMode::kActualPlacement,
                          nullptr);
    const auto b =
        str.lookup_pooled(std::span(&rt, 1), TimingMode::kActualPlacement,
                          nullptr);
    EXPECT_EQ(a[0].lanes, b[0].lanes);
  }
}

TEST(Placement, ReadRowIdenticalAcrossLayouts) {
  PlacementPair p;
  ImarsAccelerator seq(p.seq_arch, p.profile);
  ImarsAccelerator str(p.str_arch, p.profile);
  const QMatrix table = random_table(777, 3);
  const auto sid = seq.load_uiet("t", table);
  const auto tid = str.load_uiet("t", table);
  for (std::size_t row : {0ul, 255ul, 256ul, 500ul, 776ul}) {
    EXPECT_EQ(seq.read_row(sid, row, nullptr).lanes,
              str.read_row(tid, row, nullptr).lanes)
        << "row " << row;
  }
}

TEST(Placement, NnsReturnsSameIdsAcrossLayouts) {
  PlacementPair p;
  ImarsAccelerator seq(p.seq_arch, p.profile);
  ImarsAccelerator str(p.str_arch, p.profile);
  const QMatrix table = random_table(900, 4);
  const lsh::RandomHyperplaneLsh hasher(32, 256, 5);
  const auto deq = table.dequantize();
  std::vector<util::BitVec> sigs;
  for (std::size_t r = 0; r < deq.rows(); ++r)
    sigs.push_back(hasher.encode(deq.row(r)));
  const auto sid = seq.load_itet("ItET", table, sigs);
  const auto tid = str.load_itet("ItET", table, sigs);

  util::Xoshiro256 rng(6);
  tensor::Vector q(32);
  for (auto& x : q) x = static_cast<float>(rng.normal());
  const auto qsig = hasher.encode(q);
  for (std::size_t radius : {80ul, 100ul, 120ul}) {
    EXPECT_EQ(seq.nns(sid, qsig, radius, nullptr),
              str.nns(tid, qsig, radius, nullptr))
        << "radius " << radius;
  }
}

TEST(Placement, StripingSpreadsContiguousLookups) {
  // Contiguous multi-hot indices (a common embedding pattern: recent items
  // get adjacent ids) all collide in one array under sequential placement
  // but spread across arrays when striped -> lower actual-placement latency.
  PlacementPair p;
  ImarsAccelerator seq(p.seq_arch, p.profile);
  ImarsAccelerator str(p.str_arch, p.profile);
  const QMatrix table = random_table(2048, 7);  // 8 CMAs
  const auto sid = seq.load_uiet("t", table);
  const auto tid = str.load_uiet("t", table);
  seq.reset_energy();
  str.reset_energy();

  std::vector<std::size_t> contiguous;
  for (std::size_t i = 100; i < 116; ++i) contiguous.push_back(i);

  recsys::OpCost cs, ct;
  const LookupRequest rs{sid, contiguous, true};
  const LookupRequest rt{tid, contiguous, true};
  (void)seq.lookup_pooled(std::span(&rs, 1), TimingMode::kActualPlacement, &cs);
  (void)str.lookup_pooled(std::span(&rt, 1), TimingMode::kActualPlacement, &ct);

  // Sequential: 16 rows in one CMA -> 16 serialized adds. Striped: 2 rows
  // in each of 8 CMAs -> 2 adds in parallel groups.
  EXPECT_GT(cs.latency.value, 2.0 * ct.latency.value);
}

TEST(Placement, WorstCaseTimingUnaffectedByLayout) {
  // The paper's worst-case model assumes same-array collisions regardless
  // of the actual layout; both placements must report identical costs.
  PlacementPair p;
  ImarsAccelerator seq(p.seq_arch, p.profile);
  ImarsAccelerator str(p.str_arch, p.profile);
  const QMatrix table = random_table(2048, 8);
  const auto sid = seq.load_uiet("t", table);
  const auto tid = str.load_uiet("t", table);
  seq.reset_energy();
  str.reset_energy();

  std::vector<std::size_t> idx = {1, 300, 700, 1500};
  recsys::OpCost cs, ct;
  const LookupRequest rs{sid, idx, true};
  const LookupRequest rt{tid, idx, true};
  (void)seq.lookup_pooled(std::span(&rs, 1), TimingMode::kWorstCaseSameArray,
                          &cs);
  (void)str.lookup_pooled(std::span(&rt, 1), TimingMode::kWorstCaseSameArray,
                          &ct);
  EXPECT_DOUBLE_EQ(cs.latency.value, ct.latency.value);
  EXPECT_DOUBLE_EQ(cs.energy.value, ct.energy.value);
}

}  // namespace
}  // namespace imars
