// Frequency-aware placement tests: ShardMap pin layer semantics, the
// PlacementPolicy greedy hot-row assignment (hand-checked against the
// weighted-load formula), runtime warmup profiling, and the ISSUE's
// placement permutation-invariance property — ANY placement policy must
// yield identical top-k/scores to uniform placement (timing may differ,
// results may not), across the overlap x loop x class grid.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baseline/cpu_backend.hpp"
#include "core/backend_factory.hpp"
#include "data/movielens.hpp"
#include "recsys/youtube_dnn.hpp"
#include "serve/load_gen.hpp"
#include "serve/runtime.hpp"
#include "serve/shard_map.hpp"
#include "serve_test_util.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using device::Ns;
using serve::ArrivalProcess;
using serve::HotKey;
using serve::LoadGenConfig;
using serve::LoadGenerator;
using serve::PlacementPolicy;
using serve::ServingConfig;
using serve::ServingRuntime;
using serve::ShardMap;

// --- ShardMap pin layer ----------------------------------------------------

TEST(ShardMapPins, PinsOverrideBucketRingOnlyForPinnedKeys) {
  ShardMap map = ShardMap::uniform(4);
  EXPECT_FALSE(map.has_pins());
  map.set_pins({{7, 2}, {8, 2}});
  EXPECT_TRUE(map.has_pins());
  EXPECT_EQ(map.pinned_rows(), 2u);
  EXPECT_EQ(map.shard_of(7), 2u);  // ring would say 7 % 4 == 3
  EXPECT_EQ(map.shard_of(8), 2u);  // ring would say 0
  EXPECT_TRUE(map.is_pinned(7));
  EXPECT_FALSE(map.is_pinned(6));
  for (std::size_t key = 0; key < 24; ++key)
    if (key != 7 && key != 8) EXPECT_EQ(map.shard_of(key), key % 4);
}

TEST(ShardMapPins, PartitionRemainsDisjointCoverUnderPins) {
  ShardMap map = ShardMap::uniform(3);
  map.set_pins({{0, 2}, {4, 0}, {5, 0}});
  std::vector<std::size_t> keys;
  for (std::size_t k = 0; k < 30; ++k) keys.push_back(k);
  const auto slices = map.partition(keys);
  std::size_t total = 0;
  std::vector<bool> seen(30, false);
  for (std::size_t s = 0; s < slices.size(); ++s)
    for (std::size_t k : slices[s]) {
      EXPECT_EQ(map.shard_of(k), s);
      EXPECT_FALSE(seen[k]);
      seen[k] = true;
      ++total;
    }
  EXPECT_EQ(total, keys.size());
}

TEST(ShardMapPins, SetPinsReplacesAndValidates) {
  ShardMap map = ShardMap::uniform(2);
  map.set_pins({{3, 1}});
  map.set_pins({{9, 0}});  // replaces, does not accumulate
  EXPECT_FALSE(map.is_pinned(3));
  EXPECT_TRUE(map.is_pinned(9));
  EXPECT_THROW(map.set_pins({{1, 5}}), imars::Error);  // shard out of range
}

// --- PlacementPolicy -------------------------------------------------------

TEST(PlacementPolicy, TopKeysSortsHottestFirstDeterministically) {
  std::unordered_map<std::size_t, std::uint64_t> counts = {
      {10, 4}, {11, 9}, {12, 4}, {13, 0}, {14, 1}};
  const auto top = PlacementPolicy::top_keys(counts, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 11u);  // hottest
  EXPECT_EQ(top[1].key, 10u);  // freq tie at 4 -> lower key first
  EXPECT_EQ(top[2].key, 12u);
  // Zero-frequency keys never surface even when the cap allows them.
  const auto all = PlacementPolicy::top_keys(counts, 10);
  EXPECT_EQ(all.size(), 4u);
}

TEST(PlacementPolicy, GreedyAssignmentBalancesMassByRowCost) {
  // Hand-checked greedy: shards cost {1, 3}; hot keys freq {8, 4, 2, 1}.
  //   k0: (0+8)*1=8  vs (0+8)*3=24  -> shard 0 (load 8)
  //   k1: (8+4)*1=12 vs (0+4)*3=12  -> tie, lower index -> shard 0 (load 12)
  //   k2: (12+2)*1=14 vs (0+2)*3=6  -> shard 1 (load 2)
  //   k3: (12+1)*1=13 vs (2+1)*3=9  -> shard 1
  const std::vector<HotKey> hot = {{100, 8}, {101, 4}, {102, 2}, {103, 1}};
  const std::vector<Ns> cost = {Ns{1.0}, Ns{3.0}};
  const ShardMap pinned =
      PlacementPolicy::pin_hot(ShardMap::uniform(2), hot, cost, 4);
  EXPECT_EQ(pinned.pinned_rows(), 4u);
  EXPECT_EQ(pinned.shard_of(100), 0u);
  EXPECT_EQ(pinned.shard_of(101), 0u);
  EXPECT_EQ(pinned.shard_of(102), 1u);
  EXPECT_EQ(pinned.shard_of(103), 1u);
}

TEST(PlacementPolicy, UniformCostBalancesPopularityMass) {
  // Equal costs: pure LPT on frequency mass.
  //   k0(4)->s0, k1(3)->s1, k2(2)->s1 (5 vs 6), k3(1)->s0 (5 vs 6).
  const std::vector<HotKey> hot = {{0, 4}, {1, 3}, {2, 2}, {3, 1}};
  const ShardMap pinned =
      PlacementPolicy::pin_hot(ShardMap::uniform(2), hot, {}, 4);
  EXPECT_EQ(pinned.shard_of(0), 0u);
  EXPECT_EQ(pinned.shard_of(1), 1u);
  EXPECT_EQ(pinned.shard_of(2), 1u);
  EXPECT_EQ(pinned.shard_of(3), 0u);
}

TEST(PlacementPolicy, RejectsBaseMapWithHandSetPins) {
  // pin_hot would silently replace hand-set pins; that conflict is an
  // explicit error instead.
  ShardMap base = ShardMap::uniform(2);
  base.set_pins({{5, 1}});
  const std::vector<HotKey> hot = {{0, 4}};
  EXPECT_THROW((void)PlacementPolicy::pin_hot(base, hot, {}, 1),
               imars::Error);
}

TEST(PlacementPolicy, OfflineHistogramOverloadMatchesCountsOverload) {
  std::unordered_map<std::size_t, std::uint64_t> counts = {
      {10, 4}, {11, 9}, {12, 4}, {13, 0}};
  std::vector<HotKey> profile;
  for (const auto& [k, f] : counts) profile.push_back({k, f});
  const auto a = PlacementPolicy::top_keys(counts, 8);
  const auto b = PlacementPolicy::top_keys(profile, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].freq, b[i].freq);
  }
}

TEST(PlacementPolicy, MaxPinsCapsAndZeroFreqStops) {
  const std::vector<HotKey> hot = {{0, 4}, {1, 3}, {2, 0}, {3, 0}};
  const ShardMap pinned =
      PlacementPolicy::pin_hot(ShardMap::uniform(2), hot, {}, 10);
  EXPECT_EQ(pinned.pinned_rows(), 2u);  // zero-frequency tail never pins
  const ShardMap capped =
      PlacementPolicy::pin_hot(ShardMap::uniform(2), hot, {}, 1);
  EXPECT_EQ(capped.pinned_rows(), 1u);
}

// --- Runtime placement -----------------------------------------------------

struct PlacementFixture {
  PlacementFixture() {
    data::MovieLensConfig dcfg;
    dcfg.num_users = 60;
    dcfg.num_items = 90;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 341;
    ds = std::make_unique<data::MovieLensSynth>(dcfg);

    recsys::YoutubeDnnConfig mcfg;
    mcfg.seed = 343;
    model = std::make_unique<recsys::YoutubeDnn>(ds->schema(), mcfg);
    util::Xoshiro256 rng(347);
    model->train_filter_epoch(*ds, rng);
    model->train_rank_epoch(*ds, rng);

    for (std::size_t u = 0; u < ds->num_users(); ++u)
      users.push_back(model->make_context(*ds, u));

    cpu_cfg.candidates = 40;
    factory = core::cpu_backend_factory(*model, cpu_cfg);
  }

  /// One serving run; `mutate` tweaks the config (placement, maps, ...).
  template <class Fn>
  serve::ServeReport run(std::size_t classes, bool open, bool overlap,
                         Fn&& mutate) {
    ServingConfig cfg;
    cfg.shards = 3;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{300000.0};
    cfg.cache.capacity_rows = 256;
    cfg.overlap = overlap;
    cfg.max_inflight = 3;
    if (classes > 1) {
      serve::QosClassConfig interactive;
      interactive.name = "interactive";
      interactive.max_batch = 2;
      interactive.max_wait = Ns{300000.0};
      interactive.weight = 2.0;
      interactive.deadline = Ns{150000.0};
      interactive.service_estimate = Ns{20000.0};
      serve::QosClassConfig bulk;
      bulk.name = "bulk";
      bulk.max_batch = 4;
      bulk.max_wait = Ns{300000.0};
      bulk.weight = 4.0;
      serve::QosClassConfig scavenger;
      scavenger.name = "scavenger";
      scavenger.max_batch = 4;
      scavenger.max_wait = Ns{300000.0};
      scavenger.weight = 0.0;
      cfg.qos.classes = {interactive, bulk, scavenger};
    }
    mutate(cfg);
    ServingRuntime rt(factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = 40;
    lg.num_users = users.size();
    lg.user_zipf_s = 1.0;
    lg.seed = 371;
    if (classes > 1) lg.class_mix = {0.2, 0.7, 0.1};
    if (open) {
      lg.arrivals = ArrivalProcess::kOpenPoisson;
      lg.rate_qps = 2.0e5;
    }
    LoadGenerator gen(lg);
    return rt.run(gen, users);
  }

  std::unique_ptr<data::MovieLensSynth> ds;
  std::unique_ptr<recsys::YoutubeDnn> model;
  std::vector<recsys::UserContext> users;
  baseline::CpuBackendConfig cpu_cfg;
  core::BackendFactory factory;
};

TEST(RuntimePlacement, WarmupWindowPinsHotRowsAndReportsPinHits) {
  PlacementFixture fx;
  const auto report =
      fx.run(1, /*open=*/false, /*overlap=*/false, [](ServingConfig& cfg) {
        cfg.placement.enabled = true;
        cfg.placement.hot_rows = 16;
        cfg.placement.warmup_queries = 24;
      });
  ASSERT_EQ(report.size(), 40u);
  // Pins were derived and traffic actually routed through them.
  EXPECT_GT(report.routed_items, 0u);
  EXPECT_GT(report.pinned_items, 0u);
  EXPECT_GT(report.pin_hit_rate(), 0.0);
  EXPECT_LE(report.pin_hit_rate(), 1.0);
}

TEST(RuntimePlacement, PlacementRunsAreSeedDeterministic) {
  PlacementFixture fx;
  auto configure = [](ServingConfig& cfg) {
    cfg.placement.enabled = true;
    cfg.placement.hot_rows = 12;
    cfg.placement.warmup_queries = 20;
  };
  const auto a = fx.run(1, true, true, configure);
  const auto b = fx.run(1, true, true, configure);
  serve_test::expect_reports_identical(a, b);
  EXPECT_EQ(a.pinned_items, b.pinned_items);
  EXPECT_EQ(a.routed_items, b.routed_items);
}

TEST(RuntimePlacement, MisconfiguredPlacementRejected) {
  PlacementFixture fx;
  EXPECT_THROW(fx.run(1, false, false,
                      [](ServingConfig& cfg) {
                        cfg.placement.enabled = true;  // no pins, no profile
                      }),
               imars::Error);
  EXPECT_THROW(fx.run(1, false, false,
                      [](ServingConfig& cfg) {
                        cfg.placement.enabled = true;
                        cfg.placement.hot_rows = 8;  // no profile source
                      }),
               imars::Error);
}

// --- The permutation-invariance property (ISSUE satellite) -----------------
// Any placement policy — warmup-profiled pins, an adversarial offline
// histogram, even every hot row slammed onto one shard — must yield
// identical per-query top-k/scores to uniform placement, across the
// overlap x loop x class grid. Timing may differ; results may not.

TEST(RuntimePlacement, PermutationInvarianceAcrossOverlapLoopClassGrid) {
  PlacementFixture fx;
  for (const std::size_t classes : {std::size_t{1}, std::size_t{3}}) {
    for (const bool open : {false, true}) {
      for (const bool overlap : {false, true}) {
        const auto uniform =
            fx.run(classes, open, overlap, [](ServingConfig&) {});
        // Warmup-profiled frequency-aware pins.
        const auto pinned =
            fx.run(classes, open, overlap, [](ServingConfig& cfg) {
              cfg.placement.enabled = true;
              cfg.placement.hot_rows = 24;
              cfg.placement.warmup_queries = 24;
            });
        // Adversarial offline histogram: fabricated frequencies pinning a
        // spread of item keys wherever the greedy sends them.
        const auto offline =
            fx.run(classes, open, overlap, [](ServingConfig& cfg) {
              cfg.placement.enabled = true;
              cfg.placement.hot_rows = 32;
              for (std::size_t k = 0; k < 32; ++k)
                cfg.placement.histogram.push_back(
                    {k * 3 % 90, 100 - k});
            });
        // Pathological hand-built map: every third key pinned to shard 2.
        const auto lopsided =
            fx.run(classes, open, overlap, [](ServingConfig& cfg) {
              ShardMap map = ShardMap::uniform(3);
              std::vector<std::pair<std::size_t, std::uint32_t>> pins;
              for (std::size_t k = 0; k < 90; k += 3) pins.push_back({k, 2});
              map.set_pins(std::move(pins));
              cfg.shard_map = std::move(map);
            });
        serve_test::expect_results_identical(uniform, pinned);
        serve_test::expect_results_identical(uniform, offline);
        serve_test::expect_results_identical(uniform, lopsided);
      }
    }
  }
}

}  // namespace
}  // namespace imars
