// Cross-module property tests: randomized sweeps (parameterized gtest) that
// pin down invariants rather than example values. Each property names the
// paper mechanism it protects.
#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>
#include <numeric>

#include "adder/adder_tree.hpp"
#include "baseline/exact_nns.hpp"
#include "baseline/gpu_model.hpp"
#include "cma/cma.hpp"
#include "core/accelerator.hpp"
#include "core/mapping.hpp"
#include "core/perf_model.hpp"
#include "nn/mlp.hpp"
#include "util/bitvec.hpp"
#include "util/quant.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

namespace imars {
namespace {

using device::DeviceProfile;
using tensor::Matrix;
using tensor::QMatrix;
using tensor::Vector;

// ---------- BitVec vs std::bitset oracle ------------------------------------

class BitVecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitVecProperty, MatchesStdBitsetSemantics) {
  util::Xoshiro256 rng(GetParam());
  constexpr std::size_t kBits = 192;
  util::BitVec a(kBits), b(kBits);
  std::bitset<kBits> ra, rb;
  for (std::size_t i = 0; i < kBits; ++i) {
    const bool ba = rng.bernoulli(0.5);
    const bool bb = rng.bernoulli(0.5);
    a.set(i, ba);
    ra[i] = ba;
    b.set(i, bb);
    rb[i] = bb;
  }
  EXPECT_EQ(a.popcount(), ra.count());
  EXPECT_EQ((a ^ b).popcount(), (ra ^ rb).count());
  EXPECT_EQ((a & b).popcount(), (ra & rb).count());
  EXPECT_EQ((a | b).popcount(), (ra | rb).count());
  EXPECT_EQ((~a).popcount(), kBits - ra.count());
  EXPECT_EQ(a.hamming(b), (ra ^ rb).count());

  // Random single-bit operations keep agreement.
  for (int step = 0; step < 100; ++step) {
    const std::size_t i = rng.below(kBits);
    a.flip(i);
    ra.flip(i);
  }
  EXPECT_EQ(a.popcount(), ra.count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVecProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------- Quantization roundtrip -------------------------------------------

class QuantProperty : public ::testing::TestWithParam<double> {};

TEST_P(QuantProperty, RoundTripErrorWithinHalfStep) {
  const double range = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(range * 1000));
  std::vector<float> xs(512);
  for (auto& x : xs) x = static_cast<float>(rng.uniform(-range, range));
  const auto p = util::choose_symmetric(xs);
  for (float x : xs) {
    const float back = p.dequantize(p.quantize(x));
    EXPECT_LE(std::abs(back - x), p.scale * 0.5f + 1e-6f);
  }
  // Quantization is monotone: x <= y => q(x) <= q(y).
  std::vector<float> sorted(xs);
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i)
    EXPECT_LE(p.quantize(sorted[i - 1]), p.quantize(sorted[i]));
}

INSTANTIATE_TEST_SUITE_P(Ranges, QuantProperty,
                         ::testing::Values(0.01, 0.5, 1.0, 7.3, 100.0,
                                           12345.0));

// ---------- CMA pooled lookup == integer oracle (Sec III-A1 pooling) ---------

class PoolingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolingProperty, AcceleratorPoolingMatchesOracleAnyPattern) {
  const std::size_t n_lookups = GetParam();
  const DeviceProfile profile = DeviceProfile::fefet45();
  core::ImarsAccelerator acc(core::ArchConfig{}, profile);
  util::Xoshiro256 rng(n_lookups * 31 + 7);
  const QMatrix table =
      QMatrix::quantize(Matrix::randn(1500, 32, 0.4f, rng));
  const auto id = acc.load_uiet("t", table);

  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::size_t> idx(n_lookups);
    for (auto& i : idx) i = rng.below(1500);

    const core::LookupRequest req{id, idx, false};
    for (auto mode : {core::TimingMode::kActualPlacement,
                      core::TimingMode::kWorstCaseSameArray}) {
      const auto out = acc.lookup_pooled(std::span(&req, 1), mode, nullptr);
      std::vector<std::int32_t> expected(32, 0);
      for (auto i : idx)
        for (std::size_t c = 0; c < 32; ++c)
          expected[c] += static_cast<std::int32_t>(table.at(i, c));
      EXPECT_EQ(out[0].lanes, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lookups, PoolingProperty,
                         ::testing::Values(1, 2, 3, 8, 17, 64, 200));

// ---------- TCAM threshold search == Hamming filter at scale ------------------

class TcamScaleProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcamScaleProperty, FullBankSearchMatchesOracle) {
  const std::size_t rows = GetParam();
  const DeviceProfile profile = DeviceProfile::fefet45();
  core::ImarsAccelerator acc(core::ArchConfig{}, profile);
  util::Xoshiro256 rng(rows);

  const QMatrix table =
      QMatrix::quantize(Matrix::randn(rows, 32, 0.4f, rng));
  std::vector<util::BitVec> sigs;
  for (std::size_t r = 0; r < rows; ++r) {
    util::BitVec s(256);
    for (std::size_t i = 0; i < 256; ++i) s.set(i, rng.bernoulli(0.5));
    sigs.push_back(s);
  }
  const auto id = acc.load_itet("ItET", table, sigs);

  for (std::size_t radius : {90ul, 110ul, 128ul}) {
    util::BitVec q(256);
    for (std::size_t i = 0; i < 256; ++i) q.set(i, rng.bernoulli(0.5));
    const auto got = acc.nns(id, q, radius, nullptr);
    const auto expected = baseline::radius_hamming(sigs, q, radius);
    EXPECT_EQ(got, expected) << "rows=" << rows << " radius=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(TableSizes, TcamScaleProperty,
                         ::testing::Values(1, 255, 256, 257, 1000, 4000));

// ---------- Mapping invariants (Sec III-B) -----------------------------------

class MappingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MappingProperty, CapacityAndMonotonicity) {
  const std::size_t rows = GetParam();
  const core::EtMapping m(core::ArchConfig{});
  const std::size_t cmas = m.cmas_for_rows(rows);

  // Capacity: the allocated arrays hold the table, minimally.
  EXPECT_GE(cmas * 256, rows);
  EXPECT_LT((cmas - 1) * 256, rows);

  // Monotone in rows.
  EXPECT_LE(m.cmas_for_rows(std::max<std::size_t>(1, rows - 1)), cmas);
  EXPECT_GE(m.cmas_for_rows(rows + 1), cmas);

  // Mats cover the arrays at fan-out C=32.
  const std::size_t mats = m.mats_for_cmas(cmas);
  EXPECT_GE(mats * 32, cmas);
  EXPECT_LT((mats - 1) * 32, cmas);

  // Power-of-two rounding only grows the count, at most 2x - 1.
  const core::EtMapping rounded(core::ArchConfig{}, true);
  const std::size_t r = rounded.cmas_for_rows(rows);
  EXPECT_GE(r, cmas);
  EXPECT_LT(r, 2 * cmas);
}

INSTANTIATE_TEST_SUITE_P(Rows, MappingProperty,
                         ::testing::Values(1, 3, 255, 256, 257, 3000, 6040,
                                           28000, 30000, 32768));

// ---------- Adder trees: arbitrary k equals the plain sum ---------------------

class AdderProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderProperty, MultiRoundSumEqualsOracle) {
  const std::size_t k = GetParam();
  const DeviceProfile profile = DeviceProfile::fefet45();
  device::EnergyLedger ledger;
  const adder::IntraBankAdderTree tree(profile, &ledger, 4);
  util::Xoshiro256 rng(k * 13 + 1);

  std::vector<adder::Lanes> in;
  adder::Lanes expected(32, 0);
  for (std::size_t i = 0; i < k; ++i) {
    adder::Lanes l(32);
    for (auto& v : l)
      v = static_cast<std::int32_t>(rng.below(5001)) - 2500;
    for (std::size_t c = 0; c < 32; ++c) expected[c] += l[c];
    in.push_back(std::move(l));
  }
  device::Ns lat{0.0};
  EXPECT_EQ(tree.sum(in, &lat), expected);
  // Latency is rounds * Table II figure, and rounds grows ~k/3.
  EXPECT_DOUBLE_EQ(lat.value,
                   44.2 * static_cast<double>(tree.rounds_for(k)));
}

INSTANTIATE_TEST_SUITE_P(Inputs, AdderProperty,
                         ::testing::Values(1, 4, 5, 9, 26, 104, 333));

// ---------- Crossbar tiling: shape-independent correctness --------------------

class XbarShapeProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(XbarShapeProperty, TilingNeverChangesResult) {
  const auto [out_dim, in_dim] = GetParam();
  const DeviceProfile profile = DeviceProfile::fefet45();
  device::EnergyLedger ledger;
  util::Xoshiro256 rng(out_dim * 7919 + in_dim);
  const QMatrix w = QMatrix::quantize(
      Matrix::randn(out_dim, in_dim, 1.0f, rng));
  const xbar::TiledMatVec tiled(profile, &ledger, w);

  std::vector<std::int8_t> in(in_dim);
  for (auto& v : in)
    v = static_cast<std::int8_t>(static_cast<int>(rng.below(255)) - 127);
  EXPECT_EQ(tiled.gemv(in, nullptr), tensor::gemv_i8(w, in));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, XbarShapeProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{127, 255},
                      std::pair<std::size_t, std::size_t>{128, 256},
                      std::pair<std::size_t, std::size_t>{129, 257},
                      std::pair<std::size_t, std::size_t>{256, 512},
                      std::pair<std::size_t, std::size_t>{383, 383},
                      std::pair<std::size_t, std::size_t>{1, 1000}));

// ---------- GPU model linearity ------------------------------------------------

TEST(GpuModelProperty, EtLookupIsAffineInTables) {
  const baseline::GpuModel gpu;
  const double l1 = gpu.et_lookup(1).latency.value;
  const double l2 = gpu.et_lookup(2).latency.value;
  const double step = l2 - l1;
  for (std::size_t t = 3; t <= 40; ++t) {
    EXPECT_NEAR(gpu.et_lookup(t).latency.value,
                l1 + step * static_cast<double>(t - 1), 1e-6);
  }
}

TEST(GpuModelProperty, EnergyProportionalToLatencyEverywhere) {
  const baseline::GpuModel gpu;
  const double w = gpu.calibration().power_w;
  for (std::size_t t : {1ul, 7ul, 26ul}) {
    const auto c = gpu.et_lookup(t);
    // 1 W x 1 ns = 1000 pJ.
    EXPECT_NEAR(c.energy.value, c.latency.value * w * 1e3, 1.0);
  }
  for (std::size_t n : {10ul, 3952ul, 100000ul}) {
    const auto c = gpu.nns(baseline::GpuNnsKind::kBruteCosine, n);
    EXPECT_NEAR(c.energy.uj(), c.latency.us() * w, 1e-9);
  }
}

// ---------- PerfModel: latency decomposition sanity ----------------------------

class PerfModelProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PerfModelProperty, LatencyStrictlyIncreasesWithLookups) {
  const std::size_t tables = GetParam();
  const core::PerfModel pm(core::ArchConfig{}, DeviceProfile::fefet45());
  double prev = 0.0;
  for (std::size_t L = 1; L <= 32; L *= 2) {
    core::EtLookupParams p;
    p.tables = tables;
    p.lookups_per_table = L;
    p.mats_per_table = 1;
    p.active_cmas = tables * 4;
    const double lat = pm.et_lookup(p).latency.value;
    EXPECT_GT(lat, prev);
    prev = lat;
  }
}

INSTANTIATE_TEST_SUITE_P(Tables, PerfModelProperty,
                         ::testing::Values(1, 6, 7, 26));

// ---------- NNS oracles agree with each other ---------------------------------

TEST(NnsOracleProperty, TopkIsPrefixOfExpandingRadius) {
  util::Xoshiro256 rng(99);
  std::vector<util::BitVec> sigs;
  for (int i = 0; i < 300; ++i) {
    util::BitVec s(128);
    for (std::size_t b = 0; b < 128; ++b) s.set(b, rng.bernoulli(0.5));
    sigs.push_back(s);
  }
  util::BitVec q(128);
  for (std::size_t b = 0; b < 128; ++b) q.set(b, rng.bernoulli(0.5));

  // Every radius-set is a superset of all smaller radius-sets, and top-k
  // members always appear once the radius reaches their distance.
  std::vector<std::size_t> prev;
  for (std::size_t radius = 0; radius <= 128; radius += 8) {
    const auto cur = baseline::radius_hamming(sigs, q, radius);
    EXPECT_TRUE(std::includes(cur.begin(), cur.end(), prev.begin(),
                              prev.end()));
    prev = cur;
  }
  const auto top = baseline::topk_hamming(sigs, q, 10);
  const auto all = baseline::radius_hamming(sigs, q, 128);
  for (auto t : top)
    EXPECT_NE(std::find(all.begin(), all.end(), t), all.end());
}

}  // namespace
}  // namespace imars
