// Cross-module property tests: randomized sweeps (parameterized gtest) that
// pin down invariants rather than example values. Each property names the
// paper mechanism it protects.
#include <gtest/gtest.h>

#include <algorithm>
#include <bitset>
#include <map>
#include <numeric>
#include <vector>

#include "adder/adder_tree.hpp"
#include "baseline/cpu_backend.hpp"
#include "baseline/exact_nns.hpp"
#include "baseline/gpu_model.hpp"
#include "cma/cma.hpp"
#include "core/accelerator.hpp"
#include "core/backend_factory.hpp"
#include "core/mapping.hpp"
#include "core/perf_model.hpp"
#include "data/movielens.hpp"
#include "nn/mlp.hpp"
#include "recsys/youtube_dnn.hpp"
#include "serve/load_gen.hpp"
#include "serve/runtime.hpp"
#include "util/bitvec.hpp"
#include "util/quant.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

namespace imars {
namespace {

using device::DeviceProfile;
using tensor::Matrix;
using tensor::QMatrix;
using tensor::Vector;

// ---------- BitVec vs std::bitset oracle ------------------------------------

class BitVecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitVecProperty, MatchesStdBitsetSemantics) {
  util::Xoshiro256 rng(GetParam());
  constexpr std::size_t kBits = 192;
  util::BitVec a(kBits), b(kBits);
  std::bitset<kBits> ra, rb;
  for (std::size_t i = 0; i < kBits; ++i) {
    const bool ba = rng.bernoulli(0.5);
    const bool bb = rng.bernoulli(0.5);
    a.set(i, ba);
    ra[i] = ba;
    b.set(i, bb);
    rb[i] = bb;
  }
  EXPECT_EQ(a.popcount(), ra.count());
  EXPECT_EQ((a ^ b).popcount(), (ra ^ rb).count());
  EXPECT_EQ((a & b).popcount(), (ra & rb).count());
  EXPECT_EQ((a | b).popcount(), (ra | rb).count());
  EXPECT_EQ((~a).popcount(), kBits - ra.count());
  EXPECT_EQ(a.hamming(b), (ra ^ rb).count());

  // Random single-bit operations keep agreement.
  for (int step = 0; step < 100; ++step) {
    const std::size_t i = rng.below(kBits);
    a.flip(i);
    ra.flip(i);
  }
  EXPECT_EQ(a.popcount(), ra.count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVecProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------- Quantization roundtrip -------------------------------------------

class QuantProperty : public ::testing::TestWithParam<double> {};

TEST_P(QuantProperty, RoundTripErrorWithinHalfStep) {
  const double range = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(range * 1000));
  std::vector<float> xs(512);
  for (auto& x : xs) x = static_cast<float>(rng.uniform(-range, range));
  const auto p = util::choose_symmetric(xs);
  for (float x : xs) {
    const float back = p.dequantize(p.quantize(x));
    EXPECT_LE(std::abs(back - x), p.scale * 0.5f + 1e-6f);
  }
  // Quantization is monotone: x <= y => q(x) <= q(y).
  std::vector<float> sorted(xs);
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i)
    EXPECT_LE(p.quantize(sorted[i - 1]), p.quantize(sorted[i]));
}

INSTANTIATE_TEST_SUITE_P(Ranges, QuantProperty,
                         ::testing::Values(0.01, 0.5, 1.0, 7.3, 100.0,
                                           12345.0));

// ---------- CMA pooled lookup == integer oracle (Sec III-A1 pooling) ---------

class PoolingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolingProperty, AcceleratorPoolingMatchesOracleAnyPattern) {
  const std::size_t n_lookups = GetParam();
  const DeviceProfile profile = DeviceProfile::fefet45();
  core::ImarsAccelerator acc(core::ArchConfig{}, profile);
  util::Xoshiro256 rng(n_lookups * 31 + 7);
  const QMatrix table =
      QMatrix::quantize(Matrix::randn(1500, 32, 0.4f, rng));
  const auto id = acc.load_uiet("t", table);

  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::size_t> idx(n_lookups);
    for (auto& i : idx) i = rng.below(1500);

    const core::LookupRequest req{id, idx, false};
    for (auto mode : {core::TimingMode::kActualPlacement,
                      core::TimingMode::kWorstCaseSameArray}) {
      const auto out = acc.lookup_pooled(std::span(&req, 1), mode, nullptr);
      std::vector<std::int32_t> expected(32, 0);
      for (auto i : idx)
        for (std::size_t c = 0; c < 32; ++c)
          expected[c] += static_cast<std::int32_t>(table.at(i, c));
      EXPECT_EQ(out[0].lanes, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lookups, PoolingProperty,
                         ::testing::Values(1, 2, 3, 8, 17, 64, 200));

// ---------- TCAM threshold search == Hamming filter at scale ------------------

class TcamScaleProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcamScaleProperty, FullBankSearchMatchesOracle) {
  const std::size_t rows = GetParam();
  const DeviceProfile profile = DeviceProfile::fefet45();
  core::ImarsAccelerator acc(core::ArchConfig{}, profile);
  util::Xoshiro256 rng(rows);

  const QMatrix table =
      QMatrix::quantize(Matrix::randn(rows, 32, 0.4f, rng));
  std::vector<util::BitVec> sigs;
  for (std::size_t r = 0; r < rows; ++r) {
    util::BitVec s(256);
    for (std::size_t i = 0; i < 256; ++i) s.set(i, rng.bernoulli(0.5));
    sigs.push_back(s);
  }
  const auto id = acc.load_itet("ItET", table, sigs);

  for (std::size_t radius : {90ul, 110ul, 128ul}) {
    util::BitVec q(256);
    for (std::size_t i = 0; i < 256; ++i) q.set(i, rng.bernoulli(0.5));
    const auto got = acc.nns(id, q, radius, nullptr);
    const auto expected = baseline::radius_hamming(sigs, q, radius);
    EXPECT_EQ(got, expected) << "rows=" << rows << " radius=" << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(TableSizes, TcamScaleProperty,
                         ::testing::Values(1, 255, 256, 257, 1000, 4000));

// ---------- Mapping invariants (Sec III-B) -----------------------------------

class MappingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MappingProperty, CapacityAndMonotonicity) {
  const std::size_t rows = GetParam();
  const core::EtMapping m(core::ArchConfig{});
  const std::size_t cmas = m.cmas_for_rows(rows);

  // Capacity: the allocated arrays hold the table, minimally.
  EXPECT_GE(cmas * 256, rows);
  EXPECT_LT((cmas - 1) * 256, rows);

  // Monotone in rows.
  EXPECT_LE(m.cmas_for_rows(std::max<std::size_t>(1, rows - 1)), cmas);
  EXPECT_GE(m.cmas_for_rows(rows + 1), cmas);

  // Mats cover the arrays at fan-out C=32.
  const std::size_t mats = m.mats_for_cmas(cmas);
  EXPECT_GE(mats * 32, cmas);
  EXPECT_LT((mats - 1) * 32, cmas);

  // Power-of-two rounding only grows the count, at most 2x - 1.
  const core::EtMapping rounded(core::ArchConfig{}, true);
  const std::size_t r = rounded.cmas_for_rows(rows);
  EXPECT_GE(r, cmas);
  EXPECT_LT(r, 2 * cmas);
}

INSTANTIATE_TEST_SUITE_P(Rows, MappingProperty,
                         ::testing::Values(1, 3, 255, 256, 257, 3000, 6040,
                                           28000, 30000, 32768));

// ---------- Adder trees: arbitrary k equals the plain sum ---------------------

class AdderProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderProperty, MultiRoundSumEqualsOracle) {
  const std::size_t k = GetParam();
  const DeviceProfile profile = DeviceProfile::fefet45();
  device::EnergyLedger ledger;
  const adder::IntraBankAdderTree tree(profile, &ledger, 4);
  util::Xoshiro256 rng(k * 13 + 1);

  std::vector<adder::Lanes> in;
  adder::Lanes expected(32, 0);
  for (std::size_t i = 0; i < k; ++i) {
    adder::Lanes l(32);
    for (auto& v : l)
      v = static_cast<std::int32_t>(rng.below(5001)) - 2500;
    for (std::size_t c = 0; c < 32; ++c) expected[c] += l[c];
    in.push_back(std::move(l));
  }
  device::Ns lat{0.0};
  EXPECT_EQ(tree.sum(in, &lat), expected);
  // Latency is rounds * Table II figure, and rounds grows ~k/3.
  EXPECT_DOUBLE_EQ(lat.value,
                   44.2 * static_cast<double>(tree.rounds_for(k)));
}

INSTANTIATE_TEST_SUITE_P(Inputs, AdderProperty,
                         ::testing::Values(1, 4, 5, 9, 26, 104, 333));

// ---------- Crossbar tiling: shape-independent correctness --------------------

class XbarShapeProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(XbarShapeProperty, TilingNeverChangesResult) {
  const auto [out_dim, in_dim] = GetParam();
  const DeviceProfile profile = DeviceProfile::fefet45();
  device::EnergyLedger ledger;
  util::Xoshiro256 rng(out_dim * 7919 + in_dim);
  const QMatrix w = QMatrix::quantize(
      Matrix::randn(out_dim, in_dim, 1.0f, rng));
  const xbar::TiledMatVec tiled(profile, &ledger, w);

  std::vector<std::int8_t> in(in_dim);
  for (auto& v : in)
    v = static_cast<std::int8_t>(static_cast<int>(rng.below(255)) - 127);
  EXPECT_EQ(tiled.gemv(in, nullptr), tensor::gemv_i8(w, in));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, XbarShapeProperty,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{127, 255},
                      std::pair<std::size_t, std::size_t>{128, 256},
                      std::pair<std::size_t, std::size_t>{129, 257},
                      std::pair<std::size_t, std::size_t>{256, 512},
                      std::pair<std::size_t, std::size_t>{383, 383},
                      std::pair<std::size_t, std::size_t>{1, 1000}));

// ---------- GPU model linearity ------------------------------------------------

TEST(GpuModelProperty, EtLookupIsAffineInTables) {
  const baseline::GpuModel gpu;
  const double l1 = gpu.et_lookup(1).latency.value;
  const double l2 = gpu.et_lookup(2).latency.value;
  const double step = l2 - l1;
  for (std::size_t t = 3; t <= 40; ++t) {
    EXPECT_NEAR(gpu.et_lookup(t).latency.value,
                l1 + step * static_cast<double>(t - 1), 1e-6);
  }
}

TEST(GpuModelProperty, EnergyProportionalToLatencyEverywhere) {
  const baseline::GpuModel gpu;
  const double w = gpu.calibration().power_w;
  for (std::size_t t : {1ul, 7ul, 26ul}) {
    const auto c = gpu.et_lookup(t);
    // 1 W x 1 ns = 1000 pJ.
    EXPECT_NEAR(c.energy.value, c.latency.value * w * 1e3, 1.0);
  }
  for (std::size_t n : {10ul, 3952ul, 100000ul}) {
    const auto c = gpu.nns(baseline::GpuNnsKind::kBruteCosine, n);
    EXPECT_NEAR(c.energy.uj(), c.latency.us() * w, 1e-9);
  }
}

// ---------- PerfModel: latency decomposition sanity ----------------------------

class PerfModelProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PerfModelProperty, LatencyStrictlyIncreasesWithLookups) {
  const std::size_t tables = GetParam();
  const core::PerfModel pm(core::ArchConfig{}, DeviceProfile::fefet45());
  double prev = 0.0;
  for (std::size_t L = 1; L <= 32; L *= 2) {
    core::EtLookupParams p;
    p.tables = tables;
    p.lookups_per_table = L;
    p.mats_per_table = 1;
    p.active_cmas = tables * 4;
    const double lat = pm.et_lookup(p).latency.value;
    EXPECT_GT(lat, prev);
    prev = lat;
  }
}

INSTANTIATE_TEST_SUITE_P(Tables, PerfModelProperty,
                         ::testing::Values(1, 6, 7, 26));

// ---------- Cross-tenant QoS isolation (serving) ------------------------------
// Under a seeded adversarial bulk flood, (a) the interactive class's tail
// latency stays under its configured deadline bound, and (b) every query's
// merged results — for BOTH classes — are identical to running that class
// alone on a dedicated runtime. Score parity, not timing parity: co-tenancy
// may shift timestamps, never results.

class QosIsolationProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(QosIsolationProperty, BulkFloodNeverPerturbsInteractiveResults) {
  data::MovieLensConfig dcfg;
  dcfg.num_users = 50;
  dcfg.num_items = 80;
  dcfg.history_min = 3;
  dcfg.history_max = 7;
  dcfg.seed = 211;
  data::MovieLensSynth ds(dcfg);
  recsys::YoutubeDnnConfig mcfg;
  mcfg.seed = 213;
  recsys::YoutubeDnn model(ds.schema(), mcfg);
  util::Xoshiro256 train_rng(217);
  model.train_filter_epoch(ds, train_rng);
  model.train_rank_epoch(ds, train_rng);
  std::vector<recsys::UserContext> users;
  for (std::size_t u = 0; u < ds.num_users(); ++u)
    users.push_back(model.make_context(ds, u));
  baseline::CpuBackendConfig cpu_cfg;
  cpu_cfg.candidates = 30;
  const auto factory = core::cpu_backend_factory(model, cpu_cfg);

  // Adversarial schedule: a sparse interactive stream (one request every
  // 50 us) inside a bulk flood (a request every ~0.4 us, jittered by the
  // seed). Ids are globally unique; users are seeded draws.
  util::Xoshiro256 rng(GetParam());
  const device::Ns kDeadline{300000.0};  // 300 us SLO
  std::vector<serve::Request> interactive, bulk;
  std::size_t id = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    serve::Request r;
    r.id = id++;
    r.user = rng.below(users.size());
    r.qos_class = 0;
    r.enqueue = device::Ns{50000.0 * static_cast<double>(i + 1)};
    interactive.push_back(r);
  }
  double t = 0.0;
  for (std::size_t i = 0; i < 150; ++i) {
    serve::Request r;
    r.id = id++;
    r.user = rng.below(users.size());
    r.qos_class = 1;
    t += rng.uniform(100.0, 700.0);
    r.enqueue = device::Ns{t};
    bulk.push_back(r);
  }
  std::vector<serve::Request> mixed;
  std::merge(interactive.begin(), interactive.end(), bulk.begin(), bulk.end(),
             std::back_inserter(mixed),
             [](const serve::Request& a, const serve::Request& b) {
               return a.enqueue.value < b.enqueue.value;
             });

  serve::QosClassConfig icls;
  icls.name = "interactive";
  icls.max_batch = 2;
  icls.max_wait = device::Ns{500000.0};
  icls.deadline = kDeadline;
  icls.service_estimate = device::Ns{20000.0};
  icls.weight = 1.0;
  serve::QosClassConfig bcls;
  bcls.name = "bulk";
  bcls.max_batch = 8;
  bcls.max_wait = device::Ns{500000.0};
  bcls.weight = 4.0;

  auto run_trace = [&](std::vector<serve::Request> trace,
                       std::vector<serve::QosClassConfig> classes,
                       device::Ns admit_window) {
    serve::ServingConfig cfg;
    cfg.shards = 2;
    cfg.k = 5;
    cfg.qos.classes = std::move(classes);
    cfg.qos.admit_window = admit_window;
    cfg.cache.capacity_rows = 0;  // isolation must not rely on cache state
    serve::ServingRuntime rt(factory, cfg, core::ArchConfig{},
                             device::DeviceProfile::fefet45());
    serve::LoadGenConfig lg;
    lg.num_users = users.size();
    lg.arrivals = serve::ArrivalProcess::kTrace;
    lg.trace = std::move(trace);
    serve::LoadGenerator gen(lg);
    return rt.run(gen, users);
  };

  const auto mixed_report =
      run_trace(mixed, {icls, bcls}, device::Ns{50000.0});
  // Dedicated runtimes: each class alone, class-blind single-queue config.
  const auto inter_alone = run_trace(interactive, {icls}, device::Ns{0.0});
  const auto bulk_alone = run_trace(bulk, {bcls}, device::Ns{0.0});

  ASSERT_EQ(mixed_report.size(), mixed.size());
  // (a) Interactive tail latency holds its deadline bound despite the
  // flood, and the report agrees with the raw latencies.
  EXPECT_LE(mixed_report.class_p99_latency_ns(0), kDeadline.value);
  EXPECT_EQ(mixed_report.classes[0].slo_violations, 0u);
  EXPECT_EQ(mixed_report.classes[0].queries, interactive.size());

  // (b) Result parity per request id against the dedicated runtimes.
  auto topk_by_id = [](const serve::ServeReport& report) {
    std::map<std::size_t, const serve::ServedQuery*> out;
    for (const auto& q : report.queries) out.emplace(q.id, &q);
    return out;
  };
  const auto mixed_by_id = topk_by_id(mixed_report);
  for (const auto* alone : {&inter_alone, &bulk_alone}) {
    for (const auto& q : alone->queries) {
      const auto it = mixed_by_id.find(q.id);
      ASSERT_NE(it, mixed_by_id.end()) << "request " << q.id;
      const auto& m = *it->second;
      ASSERT_EQ(m.topk.size(), q.topk.size()) << "request " << q.id;
      EXPECT_EQ(m.candidates, q.candidates);
      for (std::size_t j = 0; j < q.topk.size(); ++j) {
        EXPECT_EQ(m.topk[j].item, q.topk[j].item)
            << "request " << q.id << " position " << j;
        EXPECT_FLOAT_EQ(m.topk[j].score, q.topk[j].score);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QosIsolationProperty,
                         ::testing::Values(1, 17, 4242));

// ---------- NNS oracles agree with each other ---------------------------------

TEST(NnsOracleProperty, TopkIsPrefixOfExpandingRadius) {
  util::Xoshiro256 rng(99);
  std::vector<util::BitVec> sigs;
  for (int i = 0; i < 300; ++i) {
    util::BitVec s(128);
    for (std::size_t b = 0; b < 128; ++b) s.set(b, rng.bernoulli(0.5));
    sigs.push_back(s);
  }
  util::BitVec q(128);
  for (std::size_t b = 0; b < 128; ++b) q.set(b, rng.bernoulli(0.5));

  // Every radius-set is a superset of all smaller radius-sets, and top-k
  // members always appear once the radius reaches their distance.
  std::vector<std::size_t> prev;
  for (std::size_t radius = 0; radius <= 128; radius += 8) {
    const auto cur = baseline::radius_hamming(sigs, q, radius);
    EXPECT_TRUE(std::includes(cur.begin(), cur.end(), prev.begin(),
                              prev.end()));
    prev = cur;
  }
  const auto top = baseline::topk_hamming(sigs, q, 10);
  const auto all = baseline::radius_hamming(sigs, q, 128);
  for (auto t : top)
    EXPECT_NE(std::find(all.begin(), all.end(), t), all.end());
}

}  // namespace
}  // namespace imars
