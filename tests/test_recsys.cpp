// Tests for the RecSys models: YouTubeDNN and DLRM construction, feature
// assembly, training signal, metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "data/criteo.hpp"
#include "data/movielens.hpp"
#include "recsys/dlrm.hpp"
#include "recsys/metrics.hpp"
#include "recsys/types.hpp"
#include "recsys/youtube_dnn.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace imars {
namespace {

using data::CriteoConfig;
using data::CriteoSynth;
using data::MovieLensConfig;
using data::MovieLensSynth;
using recsys::Dlrm;
using recsys::DlrmConfig;
using recsys::YoutubeDnn;
using recsys::YoutubeDnnConfig;

MovieLensConfig small_ml() {
  MovieLensConfig cfg;
  cfg.num_users = 150;
  cfg.num_items = 120;
  cfg.history_min = 3;
  cfg.history_max = 10;
  cfg.seed = 5;
  return cfg;
}

YoutubeDnnConfig small_model() {
  YoutubeDnnConfig cfg;
  cfg.emb_dim = 16;
  cfg.filter_hidden = {32, 16};
  cfg.rank_hidden = {32};
  cfg.negatives = 4;
  cfg.lr = 0.05f;
  cfg.seed = 31;
  return cfg;
}

// ---------- OpKind / StageStats ----------------------------------------------

TEST(StageStats, TotalsAndMerge) {
  recsys::StageStats s;
  s.at(recsys::OpKind::kEtLookup) += {device::Ns{10.0}, device::Pj{100.0}};
  s.at(recsys::OpKind::kDnn) += {device::Ns{5.0}, device::Pj{50.0}};
  EXPECT_DOUBLE_EQ(s.total().latency.value, 15.0);
  EXPECT_DOUBLE_EQ(s.total().energy.value, 150.0);

  recsys::StageStats t;
  t.at(recsys::OpKind::kDnn) += {device::Ns{1.0}, device::Pj{1.0}};
  s.merge(t);
  EXPECT_DOUBLE_EQ(s.at(recsys::OpKind::kDnn).latency.value, 6.0);
}

TEST(OpKind, NamesMatchFig2Categories) {
  EXPECT_EQ(recsys::op_name(recsys::OpKind::kEtLookup), "ET Lookup");
  EXPECT_EQ(recsys::op_name(recsys::OpKind::kDnn), "DNN Stack");
  EXPECT_EQ(recsys::op_name(recsys::OpKind::kNns), "NNS");
  EXPECT_EQ(recsys::op_name(recsys::OpKind::kTopK), "TopK");
}

// ---------- YoutubeDnn --------------------------------------------------------

TEST(YoutubeDnn, ConstructionMatchesSchema) {
  const MovieLensSynth ds(small_ml());
  const YoutubeDnn model(ds.schema(), small_model());

  EXPECT_EQ(model.filter_features().size(), 5u);  // Table I filtering UIETs
  EXPECT_EQ(model.rank_features().size(), 6u);    // Table I ranking UIETs
  EXPECT_EQ(model.item_table().rows(), ds.num_items());
  EXPECT_EQ(model.item_table().dim(), 16u);
  // Tower output dim = emb_dim (needed for NNS against the ItET).
  EXPECT_EQ(model.filter_mlp().out_dim(), 16u);
  EXPECT_EQ(model.rank_mlp().out_dim(), 1u);
}

TEST(YoutubeDnn, PaperDnnDimensions) {
  // The default config carries the paper's 128-64-32 / 128-1 networks.
  const YoutubeDnnConfig cfg;
  EXPECT_EQ(cfg.filter_hidden, (std::vector<std::size_t>{128, 64, 32}));
  EXPECT_EQ(cfg.rank_hidden, (std::vector<std::size_t>{128}));
  EXPECT_EQ(cfg.emb_dim, 32u);
}

TEST(YoutubeDnn, FilterInputLayout) {
  const MovieLensSynth ds(small_ml());
  const YoutubeDnn model(ds.schema(), small_model());
  const auto ctx = model.make_context(ds, 3);
  const auto in = model.filter_input(ctx);
  // 5 pooled UIET segments + history segment + dense features.
  EXPECT_EQ(in.size(), 5u * 16 + 16 + MovieLensSynth::kDenseDim);
  EXPECT_EQ(in.size(), model.filter_input_dim());
  for (float x : in) EXPECT_TRUE(std::isfinite(x));
}

TEST(YoutubeDnn, RankInputLayout) {
  const MovieLensSynth ds(small_ml());
  const YoutubeDnn model(ds.schema(), small_model());
  const auto ctx = model.make_context(ds, 3);
  const auto in = model.rank_input(ctx, 7);
  // 6 pooled UIETs + item + history + dense.
  EXPECT_EQ(in.size(), 6u * 16 + 16 + 16 + MovieLensSynth::kDenseDim);
  EXPECT_EQ(in.size(), model.rank_input_dim());
}

TEST(YoutubeDnn, CtrInUnitInterval) {
  const MovieLensSynth ds(small_ml());
  const YoutubeDnn model(ds.schema(), small_model());
  const auto ctx = model.make_context(ds, 0);
  for (std::size_t item = 0; item < 20; ++item) {
    const float p = model.ctr(ctx, item);
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(YoutubeDnn, FilterTrainingReducesLoss) {
  const MovieLensSynth ds(small_ml());
  YoutubeDnn model(ds.schema(), small_model());
  util::Xoshiro256 rng(77);
  const float first = model.train_filter_epoch(ds, rng);
  float last = first;
  for (int e = 0; e < 4; ++e) last = model.train_filter_epoch(ds, rng);
  EXPECT_LT(last, first);
}

TEST(YoutubeDnn, RankTrainingReducesLoss) {
  const MovieLensSynth ds(small_ml());
  YoutubeDnn model(ds.schema(), small_model());
  util::Xoshiro256 rng(78);
  const float first = model.train_rank_epoch(ds, rng);
  float last = first;
  for (int e = 0; e < 4; ++e) last = model.train_rank_epoch(ds, rng);
  EXPECT_LT(last, first);
}

TEST(YoutubeDnn, TrainedTowerSeparatesHeldoutFromRandom) {
  const MovieLensSynth ds(small_ml());
  YoutubeDnn model(ds.schema(), small_model());
  util::Xoshiro256 rng(79);
  for (int e = 0; e < 8; ++e) model.train_filter_epoch(ds, rng);

  // Score(heldout) should exceed score(random item) on average.
  util::RunningStats held, rnd;
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    const auto ctx = model.make_context(ds, u);
    const auto ue = model.user_embedding(ctx);
    held.add(tensor::dot(ue, model.item_table().row(ds.user(u).heldout)));
    rnd.add(tensor::dot(ue, model.item_table().row(rng.below(ds.num_items()))));
  }
  EXPECT_GT(held.mean(), rnd.mean());
}

// ---------- Dlrm ---------------------------------------------------------------

CriteoConfig small_criteo() {
  CriteoConfig cfg;
  cfg.num_samples = 2000;
  cfg.seed = 3;
  return cfg;
}

DlrmConfig small_dlrm() {
  DlrmConfig cfg;
  cfg.emb_dim = 8;
  cfg.bottom_hidden = {32, 8};
  cfg.top_hidden = {32};
  cfg.lr = 0.05f;
  cfg.seed = 21;
  return cfg;
}

TEST(Dlrm, ConstructionMatchesSchema) {
  const CriteoSynth ds(small_criteo());
  const Dlrm model(ds.schema(), small_dlrm());
  EXPECT_EQ(model.table_count(), 26u);
  EXPECT_EQ(model.bottom_mlp().in_dim(), 13u);
  EXPECT_EQ(model.bottom_mlp().out_dim(), 8u);
  // Top input: 27*26/2 pair dots + emb_dim.
  EXPECT_EQ(model.top_input_dim(), 27u * 26 / 2 + 8);
  EXPECT_EQ(model.top_mlp().out_dim(), 1u);
}

TEST(Dlrm, PaperDnnDimensions) {
  const DlrmConfig cfg;
  EXPECT_EQ(cfg.bottom_hidden, (std::vector<std::size_t>{256, 128, 32}));
  EXPECT_EQ(cfg.top_hidden, (std::vector<std::size_t>{256, 64}));
}

TEST(Dlrm, BottomMustEndAtEmbDim) {
  const CriteoSynth ds(small_criteo());
  DlrmConfig bad = small_dlrm();
  bad.bottom_hidden = {32, 16};  // != emb_dim 8
  EXPECT_THROW(Dlrm(ds.schema(), bad), Error);
}

TEST(Dlrm, InteractLayoutAndSymmetry) {
  const CriteoSynth ds(small_criteo());
  const Dlrm model(ds.schema(), small_dlrm());
  util::Xoshiro256 rng(4);
  std::vector<tensor::Vector> embs(26, tensor::Vector(8));
  for (auto& e : embs)
    for (auto& x : e) x = static_cast<float>(rng.normal());
  tensor::Vector b(8);
  for (auto& x : b) x = static_cast<float>(rng.normal());

  const auto z = model.interact(embs, b);
  EXPECT_EQ(z.size(), model.top_input_dim());
  // First pair dot is emb0 . emb1.
  EXPECT_NEAR(z[0], tensor::dot(embs[0], embs[1]), 1e-5f);
  // The last emb_dim entries are the bottom output.
  for (std::size_t c = 0; c < 8; ++c)
    EXPECT_FLOAT_EQ(z[z.size() - 8 + c], b[c]);
}

TEST(Dlrm, InferInUnitInterval) {
  const CriteoSynth ds(small_criteo());
  const Dlrm model(ds.schema(), small_dlrm());
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& s = ds.sample(i);
    const float p = model.infer(s.dense, s.sparse);
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(Dlrm, TrainingImprovesAuc) {
  const CriteoSynth ds(small_criteo());
  Dlrm model(ds.schema(), small_dlrm());
  util::Xoshiro256 rng(5);

  const auto auc_of = [&] {
    std::vector<int> labels;
    std::vector<double> scores;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      labels.push_back(ds.sample(i).label);
      scores.push_back(model.infer(ds.sample(i).dense, ds.sample(i).sparse));
    }
    return util::auc(labels, scores);
  };

  const double before = auc_of();
  for (int e = 0; e < 3; ++e) model.train_epoch(ds, rng);
  const double after = auc_of();
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.6);  // learns real signal from the synthetic oracle
}

// ---------- Metrics --------------------------------------------------------------

TEST(Metrics, HitRateCountsMembership) {
  const auto retrieve = [](std::size_t u) {
    return std::vector<std::size_t>{u, u + 1};
  };
  const auto heldout_hit = [](std::size_t u) { return u + 1; };
  const auto heldout_miss = [](std::size_t) { return std::size_t{999}; };
  EXPECT_DOUBLE_EQ(recsys::hit_rate(10, retrieve, heldout_hit), 1.0);
  EXPECT_DOUBLE_EQ(recsys::hit_rate(10, retrieve, heldout_miss), 0.0);
}

TEST(Metrics, RecallIntersection) {
  const std::vector<std::size_t> retrieved = {1, 2, 3, 4};
  const std::vector<std::size_t> relevant = {2, 4, 6};
  EXPECT_NEAR(recsys::recall(retrieved, relevant), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(recsys::recall(retrieved, {}), 0.0);
}

}  // namespace
}  // namespace imars
