// Tests for the concurrent serving runtime (src/serve/): dynamic batching
// triggers, shard-merge correctness against single-backend top-k, hot-cache
// admission and hit-rate monotonicity under Zipf skew, and end-to-end
// closed-loop serving telemetry.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "baseline/cpu_backend.hpp"
#include "core/backend_factory.hpp"
#include "data/movielens.hpp"
#include "data/zipf.hpp"
#include "recsys/youtube_dnn.hpp"
#include "serve/batcher.hpp"
#include "serve/executor.hpp"
#include "serve/hot_cache.hpp"
#include "serve/load_gen.hpp"
#include "serve/request_queue.hpp"
#include "serve/runtime.hpp"
#include "serve/shard_router.hpp"
#include "serve/stage_pipeline.hpp"
#include "serve_test_util.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using device::Ns;
using serve::Batch;
using serve::DynamicBatcher;
using serve::DynamicBatcherConfig;
using serve::HotCacheConfig;
using serve::HotEmbeddingCache;
using serve::LoadGenConfig;
using serve::LoadGenerator;
using serve::Request;
using serve::ServingConfig;
using serve::ServingRuntime;
using serve::ShardRouter;
using serve::StagePipeline;

Request make_request(std::size_t id, double t, std::size_t user = 0) {
  Request r;
  r.id = id;
  r.user = user;
  r.client = id;
  r.enqueue = Ns{t};
  return r;
}

// --- DynamicBatcher --------------------------------------------------------

TEST(DynamicBatcher, SizeTriggerClosesFullBatch) {
  DynamicBatcherConfig cfg;
  cfg.max_batch = 3;
  cfg.max_wait = Ns{1e9};  // deadline effectively off
  DynamicBatcher b(cfg);

  b.add(make_request(0, 0.0));
  b.add(make_request(1, 10.0));
  EXPECT_FALSE(b.poll(Ns{10.0}).has_value());  // neither trigger fired

  b.add(make_request(2, 20.0));
  auto batch = b.poll(Ns{20.0});
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 3u);
  EXPECT_EQ(batch->dispatch.value, 20.0);
  EXPECT_TRUE(b.empty());
}

TEST(DynamicBatcher, DeadlineTriggerClosesPartialBatch) {
  DynamicBatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait = Ns{100.0};
  DynamicBatcher b(cfg);

  b.add(make_request(0, 50.0));
  b.add(make_request(1, 80.0));
  ASSERT_TRUE(b.deadline().has_value());
  EXPECT_EQ(b.deadline()->value, 150.0);  // oldest enqueue + max_wait

  EXPECT_FALSE(b.poll(Ns{149.0}).has_value());
  auto batch = b.poll(Ns{150.0});
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 2u);  // partial batch, deadline fired
}

TEST(DynamicBatcher, SizeTriggerLeavesExcessPending) {
  DynamicBatcherConfig cfg;
  cfg.max_batch = 2;
  cfg.max_wait = Ns{1e9};
  DynamicBatcher b(cfg);
  for (std::size_t i = 0; i < 5; ++i)
    b.add(make_request(i, static_cast<double>(i)));

  auto batch = b.poll(Ns{4.0});
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->size(), 2u);
  EXPECT_EQ(batch->requests[0].id, 0u);
  EXPECT_EQ(b.pending(), 3u);

  auto flushed = b.flush(Ns{5.0});
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(flushed->size(), 2u);  // flush also respects max_batch
  EXPECT_EQ(b.pending(), 1u);
}

// --- RequestQueue / executors ---------------------------------------------

TEST(RequestQueue, BlockingPopAndClose) {
  serve::RequestQueue<int> q;
  std::thread producer([&q] {
    for (int i = 0; i < 100; ++i) q.push(i);
    q.close();
  });
  int sum = 0, count = 0;
  while (auto v = q.pop()) {
    sum += *v;
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sum, 4950);
  EXPECT_FALSE(q.push(1));  // closed queue refuses new items
}

TEST(ShardExecutor, TasksRunInSubmissionOrder) {
  std::vector<int> order;
  std::promise<void> done;
  serve::ShardExecutor ex;
  for (int i = 0; i < 50; ++i)
    ex.submit([&order, i] { order.push_back(i); });
  ex.submit([&done] { done.set_value(); });
  done.get_future().wait();  // all 50 ran (FIFO) and are visible
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// --- HotEmbeddingCache -----------------------------------------------------

TEST(HotEmbeddingCache, DisabledCacheNeverHits) {
  HotEmbeddingCache cache(HotCacheConfig{0});
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(cache.access(0, 7));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 10u);
}

TEST(HotEmbeddingCache, RepeatAccessHitsOnceResident) {
  HotEmbeddingCache cache(HotCacheConfig{4});
  EXPECT_FALSE(cache.access(0, 1));  // cold miss, admitted (space free)
  EXPECT_TRUE(cache.access(0, 1));
  EXPECT_TRUE(cache.contains(0, 1));
  EXPECT_FALSE(cache.contains(0, 2));
  // Distinct tables do not alias.
  EXPECT_FALSE(cache.access(1, 1));
  EXPECT_TRUE(cache.access(1, 1));
}

TEST(HotEmbeddingCache, FrequencyAdmissionResistsScans) {
  HotEmbeddingCache cache(HotCacheConfig{2});
  // Make rows 0 and 1 hot.
  for (int i = 0; i < 5; ++i) {
    cache.access(0, 0);
    cache.access(0, 1);
  }
  // A one-off scan over cold rows must not evict them.
  for (std::uint32_t r = 100; r < 200; ++r) EXPECT_FALSE(cache.access(0, r));
  EXPECT_TRUE(cache.access(0, 0));
  EXPECT_TRUE(cache.access(0, 1));
}

TEST(HotEmbeddingCache, HitRateMonotoneInZipfSkew) {
  const std::size_t rows = 4000, accesses = 40000, capacity = 256;
  double prev = -1.0;
  for (double s : {0.0, 0.5, 0.9, 1.3}) {
    HotEmbeddingCache cache(HotCacheConfig{capacity});
    data::ZipfSampler zipf(rows, s);
    util::Xoshiro256 rng(99);
    for (std::size_t i = 0; i < accesses; ++i)
      cache.access(0, static_cast<std::uint32_t>(zipf.sample(rng)));
    const double rate = cache.stats().hit_rate();
    EXPECT_GT(rate, prev) << "skew s=" << s;
    prev = rate;
  }
  EXPECT_GT(prev, 0.5);  // heavy skew concentrates traffic in the hot set
}

// --- Sharded serving over the CPU oracle ----------------------------------

struct ServeFixture {
  ServeFixture() {
    data::MovieLensConfig dcfg;
    dcfg.num_users = 80;
    dcfg.num_items = 96;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 41;
    ds = std::make_unique<data::MovieLensSynth>(dcfg);

    recsys::YoutubeDnnConfig mcfg;
    mcfg.seed = 43;
    model = std::make_unique<recsys::YoutubeDnn>(ds->schema(), mcfg);
    util::Xoshiro256 rng(47);
    model->train_filter_epoch(*ds, rng);
    model->train_rank_epoch(*ds, rng);

    for (std::size_t u = 0; u < ds->num_users(); ++u)
      users.push_back(model->make_context(*ds, u));

    cpu_cfg.candidates = 40;
    factory = core::cpu_backend_factory(*model, cpu_cfg);
  }

  std::unique_ptr<data::MovieLensSynth> ds;
  std::unique_ptr<recsys::YoutubeDnn> model;
  std::vector<recsys::UserContext> users;
  baseline::CpuBackendConfig cpu_cfg;
  core::BackendFactory factory;
};

TEST(ShardRouter, MergedTopkMatchesSingleBackend) {
  ServeFixture fx;
  const std::size_t k = 10;
  const auto profile = device::DeviceProfile::fefet45();
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(core::ArchConfig{}, profile));

  ShardRouter single(fx.factory, 1);
  ShardRouter sharded(fx.factory, 4);
  single.bind_users(fx.users);
  sharded.bind_users(fx.users);
  StagePipeline pipe1(1, ShardRouter::pipeline_spec(), profile);
  StagePipeline pipe4(4, ShardRouter::pipeline_spec(), profile);

  Batch batch;
  batch.dispatch = Ns{0.0};
  for (std::size_t u = 0; u < 12; ++u)
    batch.requests.push_back(make_request(u, 0.0, u));

  const auto ref = pipe1.execute(batch, single, k, nullptr, timing);
  const auto got = pipe4.execute(batch, sharded, k, nullptr, timing);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].work_items, got[i].work_items);
    ASSERT_EQ(ref[i].topk.size(), got[i].topk.size()) << "query " << i;
    for (std::size_t j = 0; j < ref[i].topk.size(); ++j) {
      EXPECT_EQ(ref[i].topk[j].item, got[i].topk[j].item)
          << "query " << i << " position " << j;
      EXPECT_FLOAT_EQ(ref[i].topk[j].score, got[i].topk[j].score);
    }
  }
}

TEST(ShardRouter, RoundRobinSpreadsFilterLoad) {
  ServeFixture fx;
  const auto profile = device::DeviceProfile::fefet45();
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(core::ArchConfig{}, profile));
  ShardRouter router(fx.factory, 4);
  router.bind_users(fx.users);
  StagePipeline pipe(4, ShardRouter::pipeline_spec(), profile);

  Batch batch;
  batch.dispatch = Ns{0.0};
  for (std::size_t u = 0; u < 8; ++u)
    batch.requests.push_back(make_request(u, 0.0, u));
  const auto res = pipe.execute(batch, router, 5, nullptr, timing);

  std::vector<std::size_t> per_shard(4, 0);
  for (const auto& r : res) ++per_shard[r.home_shard];
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(per_shard[s], 2u);
}

TEST(ServingRuntime, ClosedLoopServesWholeStream) {
  ServeFixture fx;
  ServingConfig cfg;
  cfg.shards = 2;
  cfg.k = 5;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Ns{500000.0};
  cfg.cache.capacity_rows = 512;
  ServingRuntime rt(fx.factory, cfg, core::ArchConfig{},
                    device::DeviceProfile::fefet45());

  LoadGenConfig lg;
  lg.clients = 8;
  lg.total_queries = 48;
  lg.num_users = fx.users.size();
  lg.user_zipf_s = 0.8;
  LoadGenerator gen(lg);

  const auto report = rt.run(gen, fx.users);
  ASSERT_EQ(report.size(), 48u);
  EXPECT_GE(report.batches, 48u / cfg.batcher.max_batch);

  // Every request served exactly once, every latency causally ordered.
  std::vector<bool> seen(48, false);
  for (const auto& q : report.queries) {
    ASSERT_LT(q.id, 48u);
    EXPECT_FALSE(seen[q.id]);
    seen[q.id] = true;
    EXPECT_LE(q.enqueue.value, q.dispatch.value);
    EXPECT_LT(q.dispatch.value, q.complete.value);
    EXPECT_LE(q.batch_size, cfg.batcher.max_batch);
    EXPECT_LE(q.complete.value, report.makespan.value);
  }
  EXPECT_GT(report.qps(), 0.0);
  EXPECT_GE(report.p99_latency_ns(), report.p50_latency_ns());
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    EXPECT_GE(report.rank_utilization(s), 0.0);
    EXPECT_LE(report.rank_utilization(s), 1.0);
    EXPECT_LE(report.filter_utilization(s), 1.0);
  }
  EXPECT_GT(report.cache.accesses(), 0u);
  EXPECT_GT(report.cache.hit_rate(), 0.0);  // Zipf users repeat hot rows
}

TEST(ServingRuntime, ShardingAndBatchingImproveThroughput) {
  ServeFixture fx;

  auto run_cfg = [&](std::size_t shards, std::size_t max_batch,
                     std::size_t clients) {
    ServingConfig cfg;
    cfg.shards = shards;
    cfg.k = 5;
    cfg.batcher.max_batch = max_batch;
    cfg.batcher.max_wait = Ns{500000.0};
    cfg.cache.capacity_rows = 0;
    ServingRuntime rt(fx.factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    LoadGenConfig lg;
    lg.clients = clients;
    lg.total_queries = 32;
    lg.num_users = fx.users.size();
    lg.seed = 11;
    LoadGenerator gen(lg);
    return rt.run(gen, fx.users);
  };

  const auto serial = run_cfg(1, 1, 1);
  const auto scaled = run_cfg(4, 8, 16);
  EXPECT_GT(scaled.qps(), serial.qps());
}

TEST(ServingRuntime, CacheReducesLatencyAndEnergy) {
  ServeFixture fx;

  auto run_cache = [&](std::size_t capacity) {
    ServingConfig cfg;
    cfg.shards = 2;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{500000.0};
    cfg.cache.capacity_rows = capacity;
    ServingRuntime rt(fx.factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = 32;
    lg.num_users = fx.users.size();
    lg.user_zipf_s = 1.0;
    lg.seed = 13;
    LoadGenerator gen(lg);
    return rt.run(gen, fx.users);
  };

  const auto cold = run_cache(0);
  const auto hot = run_cache(4096);
  EXPECT_EQ(cold.size(), hot.size());
  EXPECT_EQ(hot.cache.hits + hot.cache.misses, hot.cache.accesses());
  EXPECT_GT(hot.cache.hit_rate(), 0.0);
  // The CPU oracle charges no hardware ET cost, so the cache can only add
  // the (tiny) hit-side buffer cost to latency while the accounting stays
  // self-consistent; with a hardware-cost backend the adjustment is a
  // strict improvement (covered by the bench). Here: totals stay finite
  // and hits never *increase* the modeled ET occupancy beyond hit cost.
  EXPECT_GE(hot.filter_stats.total().latency.value, 0.0);
  EXPECT_GE(hot.rank_stats.total().latency.value, 0.0);
}

TEST(ServingRuntime, SameSeedReproducesReportBitIdentically) {
  ServeFixture fx;
  auto run_once = [&] {
    ServingConfig cfg;
    cfg.shards = 2;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{500000.0};
    cfg.cache.capacity_rows = 512;
    ServingRuntime rt(fx.factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = 32;
    lg.num_users = fx.users.size();
    lg.seed = 19;
    LoadGenerator gen(lg);
    return rt.run(gen, fx.users);
  };
  serve_test::expect_reports_identical(run_once(), run_once());
}

// --- ServeReport percentiles on tiny samples --------------------------------
// The CI quick benches serve a handful of queries; p99 on those streams
// must neither read past the sorted latency vector nor collapse to 0.

serve::ServedQuery tiny_query(std::size_t id, double latency_ns) {
  serve::ServedQuery q;
  q.id = id;
  q.enqueue = Ns{0.0};
  q.dispatch = Ns{0.0};
  q.complete = Ns{latency_ns};
  return q;
}

TEST(ServeReport, PercentilesOnTinySamples) {
  serve::ServeReport empty;
  EXPECT_DOUBLE_EQ(empty.p50_latency_ns(), 0.0);
  EXPECT_DOUBLE_EQ(empty.p99_latency_ns(), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_latency_ns(), 0.0);
  EXPECT_DOUBLE_EQ(empty.qps(), 0.0);

  serve::ServeReport one;
  one.queries.push_back(tiny_query(0, 1234.5));
  one.makespan = Ns{1234.5};
  EXPECT_DOUBLE_EQ(one.p50_latency_ns(), 1234.5);
  EXPECT_DOUBLE_EQ(one.p95_latency_ns(), 1234.5);
  EXPECT_DOUBLE_EQ(one.p99_latency_ns(), 1234.5);  // n=1: never 0

  serve::ServeReport few;
  for (std::size_t i = 0; i < 5; ++i)
    few.queries.push_back(tiny_query(i, 100.0 * static_cast<double>(i + 1)));
  EXPECT_DOUBLE_EQ(few.p50_latency_ns(), 300.0);
  // p99 interpolates inside the top gap: above every lower sample, at most
  // the max.
  EXPECT_GT(few.p99_latency_ns(), 400.0);
  EXPECT_LE(few.p99_latency_ns(), 500.0);
  EXPECT_GE(few.p99_latency_ns(), few.p95_latency_ns());
}

TEST(ServeReport, ClassViewsFilterByLabel) {
  serve::ServeReport report;
  for (std::size_t i = 0; i < 6; ++i) {
    auto q = tiny_query(i, 100.0 * static_cast<double>(i + 1));
    q.qos_class = i % 2;
    q.device_time = Ns{q.qos_class == 0 ? 10.0 : 30.0};
    report.queries.push_back(q);
  }
  report.makespan = Ns{600.0};
  EXPECT_EQ(report.class_latencies_ns(0).size(), 3u);
  EXPECT_DOUBLE_EQ(report.class_p50_latency_ns(0), 300.0);  // 100/300/500
  EXPECT_DOUBLE_EQ(report.class_p50_latency_ns(1), 400.0);  // 200/400/600
  EXPECT_DOUBLE_EQ(report.class_p99_latency_ns(7), 0.0);    // absent label
  // Shares: 30 vs 90 of 120 total device time.
  EXPECT_NEAR(report.device_share(0), 0.25, 1e-12);
  EXPECT_NEAR(report.device_share(1), 0.75, 1e-12);
  // Cutoff restricts to completions inside the window.
  EXPECT_NEAR(report.device_share(1, Ns{200.0}), 0.75, 1e-12);

  report.classes.resize(2);
  report.classes[0].weight = 1.0;
  report.classes[1].weight = 3.0;
  EXPECT_NEAR(report.fairness_error(), 0.0, 1e-12);
  report.classes[1].weight = 1.0;  // now entitled 50/50, measured 25/75
  EXPECT_NEAR(report.fairness_error(), 0.25, 1e-12);
}

TEST(LoadGenerator, ClosedLoopBudgetAndOrdering) {
  LoadGenConfig lg;
  lg.clients = 4;
  lg.total_queries = 10;
  lg.num_users = 100;
  LoadGenerator gen(lg);
  std::size_t issued = 0;
  for (std::size_t c = 0; c < lg.clients; ++c) {
    auto r = gen.next(c, Ns{0.0});
    ASSERT_TRUE(r.has_value());
    ++issued;
  }
  while (auto r = gen.next(0, Ns{1000.0 * static_cast<double>(issued)})) {
    EXPECT_LT(r->user, lg.num_users);
    ++issued;
  }
  EXPECT_EQ(issued, lg.total_queries);
}

}  // namespace
}  // namespace imars
