// Tests for the full-funnel servable (src/serve/servable_funnel.*):
// retrieval recall against the exact-NNS oracle, produced-item-set graph
// validation, bit-parity of the degenerate funnel against ShardRouter,
// placement invariance of the four-stage graph, table combining, and
// trace well-formedness of a funnel run.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "baseline/cpu_backend.hpp"
#include "baseline/exact_nns.hpp"
#include "core/backend_factory.hpp"
#include "data/movielens.hpp"
#include "recsys/youtube_dnn.hpp"
#include "serve/load_gen.hpp"
#include "serve/runtime.hpp"
#include "serve/servable_funnel.hpp"
#include "serve/shard_router.hpp"
#include "serve/stage_pipeline.hpp"
#include "serve/trace.hpp"
#include "serve_test_util.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using device::Ns;
using serve::FunnelConfig;
using serve::FunnelServable;
using serve::LoadGenConfig;
using serve::LoadGenerator;
using serve::PipelineSpec;
using serve::RetrievalKind;
using serve::ServingConfig;
using serve::ServingRuntime;
using serve::ShardRouter;
using serve::StageKind;
using serve::StageSpec;

struct FunnelFixture {
  FunnelFixture() {
    data::MovieLensConfig dcfg;
    dcfg.num_users = 80;
    dcfg.num_items = 96;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 41;
    ds = std::make_unique<data::MovieLensSynth>(dcfg);

    recsys::YoutubeDnnConfig mcfg;
    mcfg.seed = 43;
    model = std::make_unique<recsys::YoutubeDnn>(ds->schema(), mcfg);
    util::Xoshiro256 rng(47);
    model->train_filter_epoch(*ds, rng);
    model->train_rank_epoch(*ds, rng);

    for (std::size_t u = 0; u < ds->num_users(); ++u)
      users.push_back(model->make_context(*ds, u));

    cpu_cfg.candidates = 40;
    factory = core::cpu_backend_factory(*model, cpu_cfg);
  }

  std::vector<device::DeviceProfile> profiles(std::size_t shards) const {
    return std::vector<device::DeviceProfile>(shards,
                                              device::DeviceProfile::fefet45());
  }

  std::unique_ptr<ServingRuntime> runtime(FunnelConfig fcfg,
                                          std::size_t shards,
                                          ServingConfig cfg = {}) const {
    cfg.shards = shards;
    const auto profs = profiles(shards);
    auto servable = std::make_unique<FunnelServable>(
        *model, core::ArchConfig{}, factory, profs, std::move(fcfg));
    return std::make_unique<ServingRuntime>(std::move(servable), cfg,
                                            core::ArchConfig{},
                                            device::DeviceProfile::fefet45());
  }

  std::unique_ptr<data::MovieLensSynth> ds;
  std::unique_ptr<recsys::YoutubeDnn> model;
  std::vector<recsys::UserContext> users;
  baseline::CpuBackendConfig cpu_cfg;
  core::BackendFactory factory;
};

LoadGenConfig small_stream(std::size_t users) {
  LoadGenConfig lg;
  lg.clients = 6;
  lg.total_queries = 36;
  lg.num_users = users;
  lg.user_zipf_s = 0.8;
  return lg;
}

// --- Spec shapes and produced-item-set validation --------------------------

TEST(FunnelSpec, ConfigSelectsGraphShape) {
  FunnelConfig degenerate;
  degenerate.retrieval = RetrievalKind::kFixed;
  degenerate.rerank = false;
  const auto two = FunnelServable::pipeline_spec(degenerate);
  ASSERT_EQ(two.stages.size(), 2u);
  EXPECT_EQ(two.resolve(), ShardRouter::pipeline_spec().resolve());

  FunnelConfig no_rerank;
  no_rerank.rerank = false;
  const auto three = FunnelServable::pipeline_spec(no_rerank);
  ASSERT_EQ(three.stages.size(), 3u);
  EXPECT_TRUE(three.stages[1].consume_items);
  EXPECT_EQ(three.resolve().output_stage, 2u);

  const auto four = FunnelServable::pipeline_spec(FunnelConfig{});
  ASSERT_EQ(four.stages.size(), 4u);
  EXPECT_EQ(four.stages[2].emit_topk, FunnelConfig{}.rank_keep);
  const auto g = four.resolve();
  EXPECT_EQ(g.output_stage, 3u);                     // rerank merges
  ASSERT_EQ(g.item_sources[1], std::vector<std::size_t>{0u});  // filter<-retrieve
  ASSERT_EQ(g.item_sources[2], std::vector<std::size_t>{1u});  // rank<-filter
  ASSERT_EQ(g.item_sources[3], std::vector<std::size_t>{2u});  // rerank<-rank
}

TEST(FunnelSpec, ProducedItemSetValidation) {
  // emit_topk on a replicated stage is rejected.
  {
    PipelineSpec spec;
    StageSpec a{"a", StageKind::kReplicated, {}};
    a.emit_topk = 8;
    spec.stages = {a, {"b", StageKind::kSharded, {"a"}}};
    spec.merge_topk = true;
    EXPECT_THROW((void)spec.resolve(), Error);
  }
  // consume_items on a sharded stage is rejected.
  {
    PipelineSpec spec;
    StageSpec b{"b", StageKind::kSharded, {"a"}};
    b.consume_items = true;
    spec.stages = {{"a", StageKind::kReplicated, {}}, b};
    spec.merge_topk = true;
    EXPECT_THROW((void)spec.resolve(), Error);
  }
  // Either flag on an implicit linear chain is rejected.
  {
    PipelineSpec spec;
    StageSpec a{"a", StageKind::kSharded, {}};
    a.emit_topk = 8;
    spec.stages = {a, {"b", StageKind::kSharded, {}}};
    spec.merge_topk = true;
    EXPECT_THROW((void)spec.resolve(), Error);
  }
  // A consume_items stage with no producing predecessor is rejected.
  {
    PipelineSpec spec;
    StageSpec b{"b", StageKind::kReplicated, {}};
    b.consume_items = true;
    spec.stages = {b, {"c", StageKind::kSharded, {"b"}}};
    spec.merge_topk = true;
    EXPECT_THROW((void)spec.resolve(), Error);
  }
  // An emitting stage may not be the graph's output stage.
  {
    PipelineSpec spec;
    StageSpec b{"b", StageKind::kSharded, {"a"}};
    b.emit_topk = 8;
    spec.stages = {{"a", StageKind::kReplicated, {}}, b};
    spec.merge_topk = true;
    EXPECT_THROW((void)spec.resolve(), Error);
  }
}

// --- Retrieval recall against the exact-NNS oracle -------------------------

TEST(FunnelRetrieval, ExhaustiveIvfMatchesExactNns) {
  FunnelFixture fx;
  FunnelConfig fcfg;
  fcfg.retrieval = RetrievalKind::kIvf;
  fcfg.retrieve_k = 10;
  fcfg.ivf.nlist = 8;
  fcfg.ivf.nprobe = 8;  // probe everything: IVF degenerates to exact search
  const auto profs = fx.profiles(1);
  FunnelServable funnel(*fx.model, core::ArchConfig{}, fx.factory, profs,
                        fcfg);

  const auto& items = fx.model->item_table().matrix();
  for (std::size_t u = 0; u < 16; ++u) {
    const auto exact = baseline::topk_cosine(
        items, fx.model->user_embedding(fx.users[u]), fcfg.retrieve_k);
    const auto got = funnel.retrieval_candidates(fx.users[u]);
    const std::set<std::size_t> want(exact.begin(), exact.end());
    std::size_t hits = 0;
    for (std::size_t item : got) hits += want.count(item);
    EXPECT_EQ(hits, exact.size()) << "user " << u;
  }
}

TEST(FunnelRetrieval, AnnRecallAtKClearsGate) {
  FunnelFixture fx;
  const auto profs = fx.profiles(1);
  const auto& items = fx.model->item_table().matrix();
  const std::size_t k = 10;

  auto recall_of = [&](FunnelConfig fcfg) {
    FunnelServable funnel(*fx.model, core::ArchConfig{}, fx.factory, profs,
                          fcfg);
    std::size_t hits = 0, total = 0;
    for (std::size_t u = 0; u < 32; ++u) {
      const auto exact = baseline::topk_cosine(
          items, fx.model->user_embedding(fx.users[u]), k);
      const auto got = funnel.retrieval_candidates(fx.users[u]);
      const std::set<std::size_t> have(got.begin(), got.end());
      for (std::size_t item : exact) hits += have.count(item);
      total += exact.size();
    }
    return static_cast<double>(hits) / static_cast<double>(total);
  };

  // A generous ANN budget (retrieve_k 4x the audit k) must clear the
  // funnel's recall@k gate for both engines on the seeded corpus.
  FunnelConfig ivf;
  ivf.retrieval = RetrievalKind::kIvf;
  ivf.retrieve_k = 40;
  ivf.ivf.nlist = 8;
  ivf.ivf.nprobe = 4;
  EXPECT_GE(recall_of(ivf), 0.95);

  FunnelConfig lsh;
  lsh.retrieval = RetrievalKind::kLsh;
  lsh.retrieve_k = 40;
  EXPECT_GE(recall_of(lsh), 0.95);
}

// --- Degenerate bit-parity against ShardRouter -----------------------------

TEST(Funnel, DegenerateBitIdenticalToShardRouter) {
  FunnelFixture fx;
  ServingConfig cfg;
  cfg.shards = 3;
  cfg.k = 5;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Ns{500000.0};
  cfg.cache.capacity_rows = 256;

  auto run_router = [&] {
    ServingRuntime rt(fx.factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    LoadGenerator gen(small_stream(fx.users.size()));
    return rt.run(gen, fx.users);
  };
  auto run_funnel = [&] {
    FunnelConfig fcfg;
    fcfg.retrieval = RetrievalKind::kFixed;
    fcfg.rerank = false;  // degenerate: the exact ShardRouter graph
    auto rt = fx.runtime(fcfg, cfg.shards, cfg);
    EXPECT_TRUE(
        dynamic_cast<FunnelServable&>(rt->servable()).degenerate());
    LoadGenerator gen(small_stream(fx.users.size()));
    return rt->run(gen, fx.users);
  };

  const auto a = run_router();
  const auto b = run_funnel();
  serve_test::expect_reports_identical(a, b);
}

// --- Placement invariance of the four-stage graph --------------------------

TEST(Funnel, PlacementPermutationInvariance) {
  FunnelFixture fx;
  FunnelConfig fcfg;
  fcfg.retrieval = RetrievalKind::kIvf;
  fcfg.retrieve_k = 48;
  fcfg.filter_radius = 120;
  fcfg.rank_keep = 16;

  ServingConfig cfg;
  cfg.k = 5;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Ns{500000.0};
  cfg.cache.capacity_rows = 256;

  auto run_with_shards = [&](std::size_t shards) {
    auto rt = fx.runtime(fcfg, shards, cfg);
    LoadGenerator gen(small_stream(fx.users.size()));
    return rt->run(gen, fx.users);
  };

  // The ShardMap is a disjoint cover: fabric size moves work, never results.
  const auto one = run_with_shards(1);
  const auto three = run_with_shards(3);
  const auto four = run_with_shards(4);
  serve_test::expect_results_identical(one, three);
  serve_test::expect_results_identical(one, four);

  // The re-rank really reordered by the float model: every reported score
  // is the reference CTR of its item.
  for (const auto& q : one.queries) {
    for (const auto& hit : q.topk)
      EXPECT_FLOAT_EQ(hit.score, fx.model->ctr(fx.users[q.user], hit.item))
          << "query " << q.id;
  }
}

// --- Table combining -------------------------------------------------------

TEST(Funnel, TableCombiningKeepsResultsAndCutsRerankCost) {
  FunnelFixture fx;
  FunnelConfig base;
  base.retrieval = RetrievalKind::kIvf;
  base.retrieve_k = 48;
  base.filter_radius = 120;
  base.rank_keep = 16;

  ServingConfig cfg;
  cfg.k = 5;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Ns{500000.0};
  cfg.cache.capacity_rows = 256;

  auto run_with = [&](bool combine) {
    FunnelConfig fcfg = base;
    fcfg.combine_tables = combine;
    auto rt = fx.runtime(fcfg, 2, cfg);
    auto& funnel = dynamic_cast<FunnelServable&>(rt->servable());
    if (combine) {
      EXPECT_GE(funnel.combined_features().size(), 2u);
      EXPECT_GT(funnel.combined_rows(), 0u);
      EXPECT_LE(funnel.combined_rows(), base.combine_max_rows);
    } else {
      EXPECT_EQ(funnel.combined_rows(), 0u);
    }
    LoadGenerator gen(small_stream(fx.users.size()));
    return rt->run(gen, fx.users);
  };

  const auto plain = run_with(false);
  const auto combined = run_with(true);
  // Combining only fuses lookups — results are untouched.
  serve_test::expect_results_identical(plain, combined);

  // ...but the re-rank's ET traffic shrinks: fewer device-time ns in total.
  double plain_device = 0.0, combined_device = 0.0;
  for (const auto& q : plain.queries) plain_device += q.device_time.value;
  for (const auto& q : combined.queries)
    combined_device += q.device_time.value;
  EXPECT_LT(combined_device, plain_device);
}

// --- Trace well-formedness of a funnel run ---------------------------------

TEST(Funnel, FullFunnelTracePassesCheckWithMergeSpans) {
  FunnelFixture fx;
  FunnelConfig fcfg;
  fcfg.retrieval = RetrievalKind::kIvf;
  fcfg.retrieve_k = 48;
  fcfg.filter_radius = 120;
  fcfg.rank_keep = 16;

  ServingConfig cfg;
  cfg.k = 5;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Ns{500000.0};
  cfg.cache.capacity_rows = 256;

  auto rt = fx.runtime(fcfg, 3, cfg);
  serve::TraceLog trace;
  rt->set_observer(&trace);
  LoadGenerator gen(small_stream(fx.users.size()));
  const auto report = rt->run(gen, fx.users);
  ASSERT_EQ(report.size(), 36u);
  trace.finalize();

  const auto check = serve::check_trace(trace.events());
  for (const auto& p : check.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(check.ok);
  EXPECT_GT(check.unit_spans, 0u);
  EXPECT_GT(check.batch_spans, 0u);
  // Every query's rank stage emitted a produced item set -> merge spans.
  EXPECT_EQ(check.merge_spans, report.size());
}

}  // namespace
}  // namespace imars
