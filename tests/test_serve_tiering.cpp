// Tiered embedding memory tests (hot periphery buffer / warm CMA banks /
// modeled cold bulk tier): unit-level tier mechanics in HotEmbeddingCache
// (block faults, warm hits, FIFO demotion with one reprieve, pins,
// promote_min_freq gating, degenerate knob combinations), the runtime-level
// bit-parity contracts the ISSUE pins down — a zero-capacity tier config
// degrades to the flat store bit-identically across the whole scheduling
// grid (overlap x open/closed x gated x class count), and enabled
// migration stays bit-identical under overlap on/off because commits
// happen at batch-dispatch boundaries — the fault-attributed adaptive QoS
// observations (cold-block fault time never reaches the EWMA; the trace
// carries the attribution), and the pooled-workload in-crossbar reduction
// model: pooled chains whose missed rows share a CMA array earn a real
// tail-latency cut at identical results, while one-hot lookups spread over
// distinct tables earn exactly nothing — bit-identical reports.
#include <gtest/gtest.h>

#include <memory>
#include <string_view>
#include <vector>

#include "baseline/cpu_backend.hpp"
#include "core/backend_factory.hpp"
#include "data/criteo.hpp"
#include "data/movielens.hpp"
#include "recsys/dlrm.hpp"
#include "recsys/youtube_dnn.hpp"
#include "serve/hot_cache.hpp"
#include "serve/load_gen.hpp"
#include "serve/observe.hpp"
#include "serve/runtime.hpp"
#include "serve/servable_ctr.hpp"
#include "serve/shard_router.hpp"
#include "serve_test_util.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using device::Ns;
using serve::ArrivalProcess;
using serve::CtrServable;
using serve::HotCacheConfig;
using serve::HotEmbeddingCache;
using serve::LoadGenConfig;
using serve::LoadGenerator;
using serve::QosClassConfig;
using serve::ServingConfig;
using serve::ServingRuntime;

void expect_no_tier_traffic(const serve::CacheStats& st) {
  EXPECT_EQ(st.warm_hits, 0u);
  EXPECT_EQ(st.cold_faults, 0u);
  EXPECT_EQ(st.cold_rows_fetched, 0u);
  EXPECT_EQ(st.warm_evictions, 0u);
  EXPECT_EQ(st.promotions, 0u);
  EXPECT_EQ(st.flushes_warm, 0u);
  EXPECT_EQ(st.flushes_cold, 0u);
}

// --- HotEmbeddingCache tier unit tests -------------------------------------

TEST(TieredCache, DegenerateKnobCombinationsStayDisabled) {
  // Either knob at zero disables tiering outright: the store behaves like
  // the flat (pre-tier) cache and every tier counter stays zero.
  HotCacheConfig warm_only;
  warm_only.capacity_rows = 4;
  warm_only.warm_capacity_rows = 64;
  HotCacheConfig blocks_only;
  blocks_only.capacity_rows = 4;
  blocks_only.cold_block_rows = 8;
  EXPECT_FALSE(warm_only.tiering_enabled());
  EXPECT_FALSE(blocks_only.tiering_enabled());
  for (const auto& cfg : {warm_only, blocks_only}) {
    HotEmbeddingCache cache(cfg);
    EXPECT_FALSE(cache.tiering_enabled());
    for (std::uint32_t i = 0; i < 24; ++i) cache.access(0, i % 6);
    cache.update(0, 0);
    cache.commit_migrations(Ns{0.0});  // must be a no-op
    expect_no_tier_traffic(cache.stats());
    EXPECT_EQ(cache.take_block_faults(), 0u);
    const auto tf = cache.take_flushed_tiers();
    EXPECT_EQ(tf.warm, 0u);
    EXPECT_EQ(tf.cold, 0u);
    EXPECT_GT(cache.stats().hits, 0u);  // the flat cache still works
  }
}

TEST(TieredCache, ColdFaultAdmitsBlockAndWarmHitFollows) {
  HotCacheConfig cfg;
  cfg.capacity_rows = 0;  // hot buffer off: every access exercises the tiers
  cfg.warm_capacity_rows = 8;
  cfg.cold_block_rows = 4;  // 2 warm blocks
  HotEmbeddingCache cache(cfg);
  EXPECT_TRUE(cache.tiering_enabled());

  EXPECT_FALSE(cache.access(0, 0));  // block [0,4): cold fault
  EXPECT_EQ(cache.stats().cold_faults, 1u);
  EXPECT_EQ(cache.stats().cold_rows_fetched, 4u);  // block-granular pull
  EXPECT_TRUE(cache.warm_resident(0, 0));
  EXPECT_TRUE(cache.warm_resident(0, 3));   // whole block came in
  EXPECT_FALSE(cache.warm_resident(0, 4));  // next block did not

  EXPECT_FALSE(cache.access(0, 1));  // same block: warm hit, no new fault
  EXPECT_EQ(cache.stats().warm_hits, 1u);
  EXPECT_EQ(cache.stats().cold_faults, 1u);

  EXPECT_FALSE(cache.access(0, 5));  // block [4,8): second fault
  EXPECT_EQ(cache.stats().cold_faults, 2u);
  EXPECT_EQ(cache.take_block_faults(), 2u);
  EXPECT_EQ(cache.take_block_faults(), 0u);  // drained
}

TEST(TieredCache, CommitDemotesFifoOrderWithOneReprieve) {
  HotCacheConfig cfg;
  cfg.capacity_rows = 0;
  cfg.warm_capacity_rows = 8;  // 2 blocks of 4
  cfg.cold_block_rows = 4;
  HotEmbeddingCache cache(cfg);
  cache.access(0, 0);  // block 0
  cache.access(0, 5);  // block 4
  cache.access(0, 9);  // block 8 — one over capacity
  EXPECT_EQ(cache.stats().warm_evictions, 0u);  // demotion deferred
  cache.commit_migrations(Ns{0.0});
  // The FIFO front (block 0) is demoted — but only after every block used
  // its one reprieve (all are hotter than the zero hot-tier bound).
  EXPECT_EQ(cache.stats().warm_evictions, 1u);
  EXPECT_FALSE(cache.warm_resident(0, 0));
  EXPECT_TRUE(cache.warm_resident(0, 5));
  EXPECT_TRUE(cache.warm_resident(0, 9));
  // Re-touching the demoted block faults again.
  cache.access(0, 0);
  EXPECT_EQ(cache.stats().cold_faults, 4u);
}

TEST(TieredCache, MigrateOffStreamsUnpinnedTrafficThroughCold) {
  HotCacheConfig cfg;
  cfg.capacity_rows = 0;
  cfg.warm_capacity_rows = 8;
  cfg.cold_block_rows = 4;
  cfg.migrate = false;
  HotEmbeddingCache cache(cfg);
  for (int i = 0; i < 5; ++i) cache.access(0, 0);
  cache.commit_migrations(Ns{0.0});
  // Without migration nothing is ever admitted warm: every access to the
  // same block is a fresh fault.
  EXPECT_EQ(cache.stats().cold_faults, 5u);
  EXPECT_EQ(cache.stats().warm_hits, 0u);
  EXPECT_FALSE(cache.warm_resident(0, 0));
}

TEST(TieredCache, PinnedBlocksSurviveCommitPressure) {
  HotCacheConfig cfg;
  cfg.capacity_rows = 0;
  cfg.warm_capacity_rows = 8;  // 2 blocks
  cfg.cold_block_rows = 4;
  HotEmbeddingCache cache(cfg);
  const std::uint64_t pin_key = (0ULL << 32) | 1;  // pins block [0,4)
  cache.pin_warm(std::vector<std::uint64_t>{pin_key});
  EXPECT_TRUE(cache.warm_resident(0, 0));
  // Fault three more blocks past capacity and commit: demotions hit only
  // the FIFO (unpinned) blocks; the pin stays.
  cache.access(0, 4);
  cache.access(0, 8);
  cache.access(0, 12);
  cache.commit_migrations(Ns{0.0});
  EXPECT_TRUE(cache.warm_resident(0, 1));
  EXPECT_EQ(cache.stats().warm_evictions, 2u);  // 1 pin + 1 survivor remain
  // A pinned hit is a warm hit like any other.
  cache.access(0, 2);
  EXPECT_GT(cache.stats().warm_hits, 0u);
}

TEST(TieredCache, PinsBeyondCapacityDoNotHangCommit) {
  HotCacheConfig cfg;
  cfg.capacity_rows = 0;
  cfg.warm_capacity_rows = 4;  // 1 block
  cfg.cold_block_rows = 4;
  HotEmbeddingCache cache(cfg);
  const std::vector<std::uint64_t> pins = {(0ULL << 32) | 0, (0ULL << 32) | 4};
  cache.pin_warm(pins);  // 2 pinned blocks, capacity 1
  cache.commit_migrations(Ns{0.0});  // nothing unpinned to demote
  EXPECT_TRUE(cache.warm_resident(0, 0));
  EXPECT_TRUE(cache.warm_resident(0, 4));
  EXPECT_EQ(cache.stats().warm_evictions, 0u);
}

TEST(TieredCache, PromoteMinFreqGatesHotAdmission) {
  HotCacheConfig cfg;
  cfg.capacity_rows = 4;
  cfg.warm_capacity_rows = 8;
  cfg.cold_block_rows = 4;
  cfg.promote_min_freq = 3;
  HotEmbeddingCache cache(cfg);
  EXPECT_FALSE(cache.access(0, 0));  // freq 1: below the threshold
  EXPECT_FALSE(cache.contains(0, 0));
  EXPECT_FALSE(cache.access(0, 0));  // freq 2: still below
  EXPECT_FALSE(cache.contains(0, 0));
  EXPECT_FALSE(cache.access(0, 0));  // freq 3: admitted to the hot buffer
  EXPECT_TRUE(cache.contains(0, 0));
  EXPECT_EQ(cache.stats().promotions, 1u);
  EXPECT_TRUE(cache.access(0, 0));  // hot hit; tiers no longer consulted
  // Both below-threshold misses after the fault hit the warm block (the
  // admitting miss consults the tiers too — it is still a hot-buffer miss).
  EXPECT_EQ(cache.stats().warm_hits, 2u);
}

// --- Runtime-level fixtures ------------------------------------------------

struct TierFixture {
  TierFixture() {
    data::MovieLensConfig dcfg;
    dcfg.num_users = 60;
    dcfg.num_items = 90;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 241;
    ds = std::make_unique<data::MovieLensSynth>(dcfg);

    recsys::YoutubeDnnConfig mcfg;
    mcfg.seed = 243;
    model = std::make_unique<recsys::YoutubeDnn>(ds->schema(), mcfg);
    util::Xoshiro256 rng(247);
    model->train_filter_epoch(*ds, rng);
    model->train_rank_epoch(*ds, rng);

    for (std::size_t u = 0; u < ds->num_users(); ++u)
      users.push_back(model->make_context(*ds, u));

    cpu_cfg.candidates = 40;
    factory = core::cpu_backend_factory(*model, cpu_cfg);
  }

  serve::ServeReport run(const HotCacheConfig& cache, bool open, bool overlap,
                         bool gated, std::size_t classes) {
    ServingConfig cfg;
    cfg.shards = 3;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{300000.0};
    cfg.cache = cache;
    cfg.overlap = overlap;
    cfg.max_inflight = 3;
    if (classes > 1) {
      QosClassConfig interactive;
      interactive.name = "interactive";
      interactive.max_batch = 2;
      interactive.max_wait = Ns{300000.0};
      interactive.weight = 2.0;
      QosClassConfig bulk;
      bulk.name = "bulk";
      bulk.max_batch = 4;
      bulk.max_wait = Ns{300000.0};
      bulk.weight = 1.0;
      cfg.qos.classes = {interactive, bulk};
    } else if (gated) {
      cfg.qos = serve::QosBatcherConfig::single(cfg.batcher);
    }
    if (gated) cfg.qos.admit_window = Ns{50000.0};
    ServingRuntime rt(factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = 60;
    lg.num_users = users.size();
    lg.user_zipf_s = 1.1;
    lg.seed = 271;
    lg.update_fraction = 0.25;
    if (classes > 1) lg.class_mix = {0.7, 0.3};
    if (open) {
      lg.arrivals = ArrivalProcess::kOpenPoisson;
      lg.rate_qps = 2.0e5;
    }
    LoadGenerator gen(lg);
    return rt.run(gen, users);
  }

  std::unique_ptr<data::MovieLensSynth> ds;
  std::unique_ptr<recsys::YoutubeDnn> model;
  std::vector<recsys::UserContext> users;
  baseline::CpuBackendConfig cpu_cfg;
  core::BackendFactory factory;
};

// Disabled tiering (either knob 0) must be BIT-IDENTICAL to the flat
// cache across the full scheduling grid — the tier layer may not perturb
// a single timestamp, counter or result in any regime.
TEST(TieredRuntime, DisabledTiersBitIdenticalAcrossSchedulingGrid) {
  TierFixture fx;
  HotCacheConfig flat;
  flat.capacity_rows = 48;
  HotCacheConfig warm_only = flat;
  warm_only.warm_capacity_rows = 64;  // cold_block_rows = 0: disabled
  HotCacheConfig blocks_only = flat;
  blocks_only.cold_block_rows = 4;  // warm_capacity_rows = 0: disabled
  for (const bool overlap : {false, true})
    for (const bool open : {false, true})
      for (const bool gated : {false, true})
        for (const std::size_t classes : {std::size_t{1}, std::size_t{2}}) {
          SCOPED_TRACE(::testing::Message()
                       << "overlap=" << overlap << " open=" << open
                       << " gated=" << gated << " classes=" << classes);
          const auto base = fx.run(flat, open, overlap, gated, classes);
          const auto warm = fx.run(warm_only, open, overlap, gated, classes);
          const auto blocks =
              fx.run(blocks_only, open, overlap, gated, classes);
          serve_test::expect_reports_identical(base, warm);
          serve_test::expect_reports_identical(base, blocks);
          expect_no_tier_traffic(warm.cache);
          expect_no_tier_traffic(blocks.cache);
        }
}

// Zero hot-buffer capacity plus a degenerate tier config is still the pure
// write-through store of the write-back tests: nothing faults, nothing
// flushes, updates pay full array cost.
TEST(TieredRuntime, ZeroCapacityDegenerateTiersStayWriteThrough) {
  TierFixture fx;
  HotCacheConfig none;  // capacity 0, no tiers
  HotCacheConfig warm_only;
  warm_only.warm_capacity_rows = 64;
  const auto base =
      fx.run(none, /*open=*/false, /*overlap=*/false, /*gated=*/false, 1);
  const auto warm =
      fx.run(warm_only, /*open=*/false, /*overlap=*/false, /*gated=*/false, 1);
  serve_test::expect_reports_identical(base, warm);
  expect_no_tier_traffic(warm.cache);
  EXPECT_EQ(warm.cache.update_hits, 0u);
  EXPECT_GT(warm.cache.update_misses, 0u);
  EXPECT_EQ(warm.cache.flushes, 0u);
}

// Migration commits at batch-dispatch boundaries only, so the decision
// sequence — and with it every tier counter and every charged block fault
// — is identical whether batches overlap or drain phased.
TEST(TieredRuntime, MigrationDeterministicUnderOverlap) {
  TierFixture fx;
  HotCacheConfig tiered;
  tiered.capacity_rows = 48;
  tiered.warm_capacity_rows = 64;
  tiered.cold_block_rows = 4;
  for (const bool open : {false, true}) {
    SCOPED_TRACE(::testing::Message() << "open=" << open);
    const auto phased =
        fx.run(tiered, open, /*overlap=*/false, /*gated=*/false, 1);
    const auto phased_again =
        fx.run(tiered, open, /*overlap=*/false, /*gated=*/false, 1);
    const auto overlapped =
        fx.run(tiered, open, /*overlap=*/true, /*gated=*/false, 1);
    serve_test::expect_reports_identical(phased, phased_again);
    serve_test::expect_reports_identical(phased, overlapped);
    // The machinery actually fired: faults were charged, blocks went warm
    // and were hit there, rows were admitted hot under the tier regime.
    EXPECT_GT(phased.cache.cold_faults, 0u);
    EXPECT_GT(phased.cache.warm_hits, 0u);
    EXPECT_GT(phased.cache.promotions, 0u);
    // With tiering on every flush has a destination tier.
    EXPECT_EQ(phased.cache.flushes,
              phased.cache.flushes_warm + phased.cache.flushes_cold);
    EXPECT_GT(phased.cache.flushes, 0u);
  }
}

// --- Adaptive QoS under tier faults ----------------------------------------

// Records the per-batch lifecycle spans next to the adaptive estimator's
// counter stream, so a test can audit the fault attribution: "qos.fault.*"
// fires at drain for every batch that charged cold-block time, "qos.obs.*"
// fires at commit with the observation the EWMA actually consumed.
struct QosAudit final : serve::ObserverSink {
  std::vector<serve::BatchSpan> batches;
  std::vector<double> obs;     // committed observations, commit order
  std::vector<double> faults;  // fault-charged ns, faulting-batch order
  void on_batch(const serve::BatchSpan& b) override { batches.push_back(b); }
  void on_counter(std::string_view name, Ns, double value) override {
    if (name.starts_with("qos.obs.")) obs.push_back(value);
    if (name.starts_with("qos.fault.")) faults.push_back(value);
  }
};

// Cold-block fault bursts are a tier-warming TRANSIENT, not class service
// drift: the adaptive estimator must subtract the fault-charged time
// (OpKind::kEtBlock) from the batch observation it feeds the EWMA — else a
// drift-induced fault burst inflates the estimate and triggers spurious
// preemptive closes long after the hot set re-warmed. The trace keeps the
// attribution auditable, and the commit schedule stays deterministic.
TEST(TieredRuntime, AdaptiveEstimatesAttributeFaultTimeSeparately) {
  TierFixture fx;
  // Two-phase drift trace (the bench's shape, miniature): phase B rotates
  // every drawn user by half the population, so the phase-A warm blocks go
  // stale and faults recur MID-RUN, not just during warm-up.
  std::vector<serve::Request> trace;
  {
    double t0 = 0.0;
    for (int phase = 0; phase < 2; ++phase) {
      LoadGenConfig pl;
      pl.clients = 8;
      pl.total_queries = 30;
      pl.num_users = fx.users.size();
      pl.user_zipf_s = 1.1;
      pl.seed = 271 + static_cast<std::uint64_t>(phase);
      pl.arrivals = ArrivalProcess::kOpenPoisson;
      pl.rate_qps = 2.0e5;
      LoadGenerator gen(pl);
      double last = t0;
      while (auto r = gen.next_arrival()) {
        serve::Request q = *r;
        if (phase == 1)
          q.user = (q.user + fx.users.size() / 2) % fx.users.size();
        q.enqueue = Ns{q.enqueue.value + t0};
        q.id = trace.size();
        last = q.enqueue.value;
        trace.push_back(q);
      }
      t0 = last + 5000.0;  // one small gap between the phases
    }
  }
  auto run = [&](const HotCacheConfig& cache, bool overlap,
                 serve::ObserverSink* sink) {
    ServingConfig cfg;
    cfg.shards = 3;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{300000.0};
    cfg.cache = cache;
    cfg.overlap = overlap;
    cfg.adaptive.enabled = true;
    ServingRuntime rt(fx.factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    if (sink != nullptr) rt.set_observer(sink);
    LoadGenConfig lg;
    lg.arrivals = ArrivalProcess::kTrace;
    lg.trace = trace;
    lg.num_users = fx.users.size();
    LoadGenerator gen(lg);
    return rt.run(gen, fx.users);
  };

  HotCacheConfig tiered;
  tiered.capacity_rows = 48;
  tiered.warm_capacity_rows = 64;
  tiered.cold_block_rows = 4;
  QosAudit audit;
  const auto tiered_report = run(tiered, /*overlap=*/false, &audit);
  ASSERT_GT(tiered_report.cache.cold_faults, 0u);
  ASSERT_FALSE(audit.faults.empty());  // the attribution is visible
  for (const double f : audit.faults) EXPECT_GT(f, 0.0);
  // One committed observation per estimate commit, in batch-drain order
  // (single class: obs_pending is FIFO); the trailing batches' pending
  // observations never commit, so obs <= batches.
  EXPECT_EQ(audit.obs.size(), tiered_report.spec.estimate_commits);
  ASSERT_LE(audit.obs.size(), audit.batches.size());
  ASSERT_GT(audit.obs.size(), 0u);
  // Every committed observation is the batch's wall service MINUS its
  // fault-charged time (clamped at zero) — never more than the raw span,
  // and strictly less wherever a fault was charged (warm-up faults land in
  // the first batches, which always commit).
  std::size_t strictly_adjusted = 0;
  for (std::size_t k = 0; k < audit.obs.size(); ++k) {
    const double raw =
        audit.batches[k].complete.value - audit.batches[k].close.value;
    EXPECT_LE(audit.obs[k], raw + 1e-6);
    if (raw - audit.obs[k] > 1.0) ++strictly_adjusted;
  }
  EXPECT_GT(strictly_adjusted, 0u);

  // With tiering disabled kEtBlock is identically zero: no fault counters,
  // and every committed observation IS the raw batch service.
  HotCacheConfig flat;
  flat.capacity_rows = 48;
  QosAudit flat_audit;
  const auto flat_report = run(flat, /*overlap=*/false, &flat_audit);
  EXPECT_EQ(flat_report.cache.cold_faults, 0u);
  EXPECT_TRUE(flat_audit.faults.empty());
  ASSERT_GT(flat_audit.obs.size(), 0u);
  for (std::size_t k = 0; k < flat_audit.obs.size(); ++k) {
    const double raw = flat_audit.batches[k].complete.value -
                       flat_audit.batches[k].close.value;
    EXPECT_DOUBLE_EQ(flat_audit.obs[k], raw);
  }

  // The adjustment must not perturb the commit-schedule determinism the
  // adaptive contract guarantees: bit-identical reruns, and bit-identical
  // under overlap on/off.
  const auto again = run(tiered, /*overlap=*/false, nullptr);
  const auto overlapped = run(tiered, /*overlap=*/true, nullptr);
  serve_test::expect_reports_identical(tiered_report, again);
  serve_test::expect_reports_identical(tiered_report, overlapped);
}

// --- Pooled-workload in-crossbar reduction (MovieLens history chains) ------

// The reduction model merges only missed rows of ONE pooling scope that
// are resident in the SAME CMA array (the accumulate happens on the
// array's bitlines). MovieLens history chains pool 3-8 ItET rows per pass
// and the 90-item catalog fits inside array 0 (256 rows per array), so
// chains with >= 2 misses earn real credit: identical results, strictly
// better tail latency. The capability must also stay inert unless BOTH the
// stage declares it (StageSpec::reduce) and the device profile opts in.
TEST(TieredRuntime, PooledReductionCutsTailAndNeedsStageOptIn) {
  TierFixture fx;
  auto run = [&](const device::DeviceProfile& profile, bool stage_reduce) {
    auto router = std::make_unique<serve::ShardRouter>(fx.factory, 3);
    if (stage_reduce) {
      auto spec = serve::ShardRouter::pipeline_spec();
      for (auto& s : spec.stages) s.reduce = true;
      router->override_spec(std::move(spec));
    }
    ServingConfig cfg;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{300000.0};
    cfg.cache.capacity_rows = 48;  // small: pooled chains actually miss
    ServingRuntime rt(std::move(router), cfg, core::ArchConfig{}, profile);
    LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = 60;
    lg.num_users = fx.users.size();
    lg.user_zipf_s = 1.1;
    lg.seed = 271;
    // Open loop: completion-independent arrivals, so both profiles see the
    // identical query stream and only the ET timing may differ.
    lg.arrivals = ArrivalProcess::kOpenPoisson;
    lg.rate_qps = 2.0e5;
    LoadGenerator gen(lg);
    return rt.run(gen, fx.users);
  };
  const auto flat_profile = device::DeviceProfile::fefet45();
  auto reduce_profile = flat_profile;
  reduce_profile.in_crossbar_reduction = true;

  const auto flat = run(flat_profile, /*stage_reduce=*/true);
  const auto reduced = run(reduce_profile, /*stage_reduce=*/true);
  // Merging partial results inside the array never changes WHAT is
  // computed — and the reduced-away result returns are real latency. The
  // arrival stream (and with it every batch close) is identical, so the
  // reduced run dominates query by query: no query completes later, the
  // chains that merged complete strictly earlier, and the total device
  // time strictly shrinks.
  serve_test::expect_results_identical(flat, reduced);
  ASSERT_EQ(flat.queries.size(), reduced.queries.size());
  double flat_device = 0.0, reduced_device = 0.0;
  std::size_t strictly_faster = 0;
  for (std::size_t i = 0; i < flat.queries.size(); ++i) {
    const double lf =
        (flat.queries[i].complete - flat.queries[i].enqueue).value;
    const double lr =
        (reduced.queries[i].complete - reduced.queries[i].enqueue).value;
    EXPECT_LE(lr, lf + 1e-6);
    if (lf - lr > 1e-6) ++strictly_faster;
    flat_device += flat.queries[i].device_time.value;
    reduced_device += reduced.queries[i].device_time.value;
  }
  EXPECT_GT(strictly_faster, 0u);
  EXPECT_LT(reduced_device, flat_device);
  EXPECT_LE(reduced.p99_latency_ns(), flat.p99_latency_ns());
  EXPECT_LE(reduced.makespan.value, flat.makespan.value);

  // Profile opt-in WITHOUT the stage declaration is inert — bit-identical
  // to the flat-profile run (whose stage flag is in turn inert without the
  // profile), down to every timestamp and counter.
  const auto undeclared = run(reduce_profile, /*stage_reduce=*/false);
  serve_test::expect_reports_identical(flat, undeclared);
}

// --- In-crossbar reduction on the CTR fabric -------------------------------

struct CtrTierFixture {
  CtrTierFixture() {
    data::CriteoConfig dcfg;
    dcfg.num_samples = 64;
    dcfg.seed = 61;
    ds = std::make_unique<data::CriteoSynth>(dcfg);

    recsys::DlrmConfig mcfg;
    mcfg.seed = 63;
    model = std::make_unique<recsys::Dlrm>(ds->schema(), mcfg);

    for (std::size_t i = 0; i < 8; ++i) calib.push_back(ds->sample(i));
    factory = core::imars_ctr_backend_factory(
        *model, core::ArchConfig{}, core::TimingMode::kWorstCaseSameArray,
        calib);
    for (std::size_t i = 0; i < ds->size(); ++i)
      samples.push_back(ds->sample(i));
  }

  serve::ServeReport run(const device::DeviceProfile& profile) {
    const std::vector<device::DeviceProfile> profiles(2, profile);
    auto servable = std::make_unique<CtrServable>(factory, profiles);
    servable->bind_samples(samples);
    ServingConfig cfg;
    cfg.k = 1;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{500000.0};
    cfg.cache.capacity_rows = 2048;
    ServingRuntime rt(std::move(servable), cfg, core::ArchConfig{}, profile);
    LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = 32;
    lg.num_users = samples.size();
    lg.user_zipf_s = 1.0;
    lg.seed = 67;
    // Open loop: the arrival stream is completion-independent, so both
    // profiles see the identical query/batch sequence and only the gather
    // timing may differ.
    lg.arrivals = ArrivalProcess::kOpenPoisson;
    lg.rate_qps = 2.0e5;
    LoadGenerator gen(lg);
    return rt.run(gen);
  }

  std::unique_ptr<data::CriteoSynth> ds;
  std::unique_ptr<recsys::Dlrm> model;
  std::vector<data::CriteoSample> calib;
  std::vector<data::CriteoSample> samples;
  core::CtrBackendFactory factory;
};

// DLRM's sparse lookups are one-hot rows in 26 DISTINCT tables: no two
// missed rows of one impression's bank group ever share a (table, CMA
// array) cell, so the pooled-workload model gives the capability exactly
// ZERO credit here — turning it on must be completely inert, down to every
// timestamp. (The former single-row model credited misses per scope
// without the same-array constraint and manufactured a tail-latency win
// out of rows that can never meet on a bitline; this is the regression
// anchor for that fix.)
TEST(TieredCtr, ReductionIsInertOnDistinctTableOneHotLookups) {
  CtrTierFixture fx;
  const auto flat_profile = device::DeviceProfile::fefet45();
  auto reduce_profile = flat_profile;
  reduce_profile.in_crossbar_reduction = true;

  const auto flat = fx.run(flat_profile);
  const auto reduced = fx.run(reduce_profile);
  serve_test::expect_reports_identical(flat, reduced);
}

}  // namespace
}  // namespace imars
