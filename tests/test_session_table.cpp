// Tests for the cuckoo-hashed session layer (serve/session_table.*) and
// its load-generator integration (LoadGenConfig::session_mode): seeded
// churn determinism, the bounded-kick O(1) insert guarantee under fill
// pressure, and the churn-0 parity contract — session mode must emit a
// request stream bit-identical to the plain per-user draw stream except
// for the inert session_seq / session_fresh fields.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "serve/load_gen.hpp"
#include "serve/session_table.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using device::Ns;
using serve::ArrivalProcess;
using serve::LoadGenConfig;
using serve::LoadGenerator;
using serve::Request;
using serve::SessionState;
using serve::SessionTable;
using serve::SessionTableConfig;

TEST(SessionTable, TouchCreatesThenBumpsSequence) {
  SessionTableConfig cfg;
  cfg.capacity = 64;
  SessionTable table(cfg);

  const SessionState first = table.touch(42, Ns{10.0});
  EXPECT_EQ(first.user, 42u);
  EXPECT_EQ(first.sequence, 1u);  // arrival: first query of the session
  EXPECT_EQ(first.first_seen.value, 10.0);
  EXPECT_EQ(first.last_seen.value, 10.0);
  EXPECT_TRUE(table.contains(42));
  EXPECT_EQ(table.occupancy(), 1u);

  const SessionState second = table.touch(42, Ns{25.0});
  EXPECT_EQ(second.sequence, 2u);
  EXPECT_EQ(second.first_seen.value, 10.0);  // arrival time sticks
  EXPECT_EQ(second.last_seen.value, 25.0);
  EXPECT_EQ(second.profile, first.profile);  // personalization tag stable
  EXPECT_EQ(table.occupancy(), 1u);

  EXPECT_EQ(table.stats().lookups, 2u);
  EXPECT_EQ(table.stats().hits, 1u);
  EXPECT_EQ(table.stats().arrivals, 1u);
}

TEST(SessionTable, EvictRandomRetiresLiveSessions) {
  SessionTableConfig cfg;
  cfg.capacity = 64;
  SessionTable table(cfg);
  for (std::uint64_t u = 0; u < 16; ++u) table.touch(u, Ns{1.0});
  ASSERT_EQ(table.occupancy(), 16u);

  util::Xoshiro256 rng(99);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_TRUE(table.evict_random(rng));
  EXPECT_EQ(table.occupancy(), 0u);
  EXPECT_EQ(table.stats().departures, 16u);
  EXPECT_FALSE(table.evict_random(rng));  // empty table: nothing to retire
}

// The O(1) guarantee: no insert ever walks a kick chain longer than
// max_kicks, even when the population dwarfs the table and every insert
// lands in a full neighborhood. Overflow is absorbed by forced evictions
// (a departed session), never by unbounded probing.
TEST(SessionTable, KickChainsStayBoundedUnderFillPressure) {
  SessionTableConfig cfg;
  cfg.capacity = 256;
  cfg.max_kicks = 8;
  cfg.seed = 5;
  SessionTable table(cfg);

  const std::size_t population = 10000;
  for (std::uint64_t u = 0; u < population; ++u) table.touch(u, Ns{1.0});

  EXPECT_LE(table.max_kick_chain(), cfg.max_kicks);
  EXPECT_LE(table.occupancy(), table.capacity());
  // 10k distinct arrivals through <=256 slots: the table must have been
  // driven into forced evictions, and near-full occupancy must survive.
  EXPECT_GT(table.stats().forced_evictions, 0u);
  EXPECT_GT(table.load_factor(), 0.5);
  const auto& s = table.stats();
  EXPECT_EQ(s.arrivals, population);
  EXPECT_EQ(s.arrivals - s.departures, table.occupancy());
}

// A (capacity, seed) pair fully determines placement, kicks and
// evictions: replaying the identical touch sequence reproduces identical
// statistics, occupancy and per-user residency.
TEST(SessionTable, SeededChurnIsDeterministic) {
  SessionTableConfig cfg;
  cfg.capacity = 128;
  cfg.max_kicks = 6;
  cfg.seed = 11;
  SessionTable a(cfg);
  SessionTable b(cfg);

  util::Xoshiro256 users(21);
  util::Xoshiro256 churn_a(31);
  util::Xoshiro256 churn_b(31);
  for (std::size_t i = 0; i < 5000; ++i) {
    const std::uint64_t u = users() % 1000;
    const Ns now{static_cast<double>(i)};
    const SessionState sa = a.touch(u, now);
    const SessionState sb = b.touch(u, now);
    EXPECT_EQ(sa.sequence, sb.sequence);
    EXPECT_EQ(sa.profile, sb.profile);
    if (i % 7 == 0) {
      EXPECT_EQ(a.evict_random(churn_a), b.evict_random(churn_b));
    }
  }
  EXPECT_EQ(a.occupancy(), b.occupancy());
  EXPECT_EQ(a.max_kick_chain(), b.max_kick_chain());
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().arrivals, b.stats().arrivals);
  EXPECT_EQ(a.stats().departures, b.stats().departures);
  EXPECT_EQ(a.stats().forced_evictions, b.stats().forced_evictions);
  EXPECT_EQ(a.stats().kicks, b.stats().kicks);
  for (std::uint64_t u = 0; u < 1000; ++u)
    EXPECT_EQ(a.contains(u), b.contains(u));
}

// Session sequence numbers must agree with a plain per-user count while
// the session stays live (no churn: sessions never depart).
TEST(SessionTable, SequenceMatchesPerUserCountWithoutChurn) {
  SessionTableConfig cfg;
  cfg.capacity = 4096;
  SessionTable table(cfg);
  std::unordered_map<std::uint64_t, std::uint32_t> counts;
  util::Xoshiro256 users(3);
  for (std::size_t i = 0; i < 8000; ++i) {
    const std::uint64_t u = users() % 512;  // fits: nothing departs
    const SessionState s = table.touch(u, Ns{static_cast<double>(i)});
    EXPECT_EQ(s.sequence, ++counts[u]);
  }
  EXPECT_EQ(table.stats().forced_evictions, 0u);
  EXPECT_EQ(table.occupancy(), counts.size());
}

LoadGenConfig session_gen_config(double churn) {
  LoadGenConfig lg;
  lg.clients = 8;
  lg.total_queries = 4000;
  lg.num_users = 50000;
  lg.user_zipf_s = 0.9;
  lg.seed = 17;
  lg.arrivals = ArrivalProcess::kOpenPoisson;
  lg.rate_qps = 1e6;
  lg.class_mix = {0.7, 0.3};
  lg.update_fraction = 0.1;
  lg.session_mode = true;
  // Room for every distinct user the 4000-query stream can touch: with
  // churn off nothing may depart, so the table must never be driven into
  // forced (fill-pressure) evictions.
  lg.session_capacity = 16384;
  lg.session_churn = churn;
  return lg;
}

// Churn-0 parity: enabling session mode must not shift ANY draw — the
// emitted stream is bit-identical to the session-off stream except for
// the session_seq / session_fresh fields it adds, and those must mirror
// a plain per-user occurrence count (nothing ever departs).
TEST(SessionLoadGen, ChurnZeroMatchesPlainStream) {
  LoadGenConfig with = session_gen_config(0.0);
  LoadGenConfig without = with;
  without.session_mode = false;

  LoadGenerator gs(with);
  LoadGenerator gp(without);
  std::unordered_map<std::uint64_t, std::uint32_t> counts;
  while (true) {
    const std::optional<Request> rs = gs.next_arrival();
    const std::optional<Request> rp = gp.next_arrival();
    ASSERT_EQ(rs.has_value(), rp.has_value());
    if (!rs) break;
    EXPECT_EQ(rs->id, rp->id);
    EXPECT_EQ(rs->user, rp->user);
    EXPECT_EQ(rs->client, rp->client);
    EXPECT_EQ(rs->qos_class, rp->qos_class);
    EXPECT_EQ(rs->is_update, rp->is_update);
    EXPECT_EQ(rs->enqueue.value, rp->enqueue.value);
    // The added personalization fields mirror a per-user running count.
    const std::uint32_t seq = ++counts[rs->user];
    EXPECT_EQ(rs->session_seq, seq);
    EXPECT_EQ(rs->session_fresh, seq == 1);
    // Plain stream leaves them inert.
    EXPECT_EQ(rp->session_seq, 0u);
    EXPECT_FALSE(rp->session_fresh);
  }
  ASSERT_NE(gs.sessions(), nullptr);
  EXPECT_EQ(gs.sessions()->stats().departures, 0u);
  EXPECT_EQ(gp.sessions(), nullptr);
}

// Churn draws ride a dedicated RNG stream: turning churn on retires
// sessions (fresh arrivals reappear) but must never shift the user /
// class / update / arrival-time draws.
TEST(SessionLoadGen, ChurnNeverShiftsUserStream) {
  LoadGenerator churned(session_gen_config(0.2));
  LoadGenConfig plain_cfg = session_gen_config(0.0);
  plain_cfg.session_mode = false;
  LoadGenerator plain(plain_cfg);

  std::uint64_t departures_seen = 0;
  while (true) {
    const std::optional<Request> rc = churned.next_arrival();
    const std::optional<Request> rp = plain.next_arrival();
    ASSERT_EQ(rc.has_value(), rp.has_value());
    if (!rc) break;
    EXPECT_EQ(rc->user, rp->user);
    EXPECT_EQ(rc->qos_class, rp->qos_class);
    EXPECT_EQ(rc->is_update, rp->is_update);
    EXPECT_EQ(rc->enqueue.value, rp->enqueue.value);
  }
  departures_seen = churned.sessions()->stats().departures;
  EXPECT_GT(departures_seen, 0u);  // churn actually retired sessions
  EXPECT_LE(churned.sessions()->max_kick_chain(),
            session_gen_config(0.2).session_max_kicks);
}

// Two identically-seeded session-mode generators (churn on) replay the
// exact same stream — the end-to-end determinism the scaling bench's
// steady-state runs rely on.
TEST(SessionLoadGen, SeededStreamsReplayBitIdentically) {
  LoadGenerator a(session_gen_config(0.05));
  LoadGenerator b(session_gen_config(0.05));
  while (true) {
    const std::optional<Request> ra = a.next_arrival();
    const std::optional<Request> rb = b.next_arrival();
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (!ra) break;
    EXPECT_EQ(ra->user, rb->user);
    EXPECT_EQ(ra->session_seq, rb->session_seq);
    EXPECT_EQ(ra->session_fresh, rb->session_fresh);
    EXPECT_EQ(ra->enqueue.value, rb->enqueue.value);
  }
  EXPECT_EQ(a.sessions()->stats().hits, b.sessions()->stats().hits);
  EXPECT_EQ(a.sessions()->stats().departures,
            b.sessions()->stats().departures);
}

}  // namespace
}  // namespace imars
