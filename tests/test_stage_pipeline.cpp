// Tests for the backend-agnostic staged-pipeline engine (src/serve/):
// ShardMap disjoint covers and capability weighting, heterogeneous-
// partition merge correctness against the single-backend oracle, CTR
// serving parity against serial ImarsCtrBackend::score, async stage-
// overlap determinism, and Poisson open-loop arrivals.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "baseline/cpu_backend.hpp"
#include "core/backend_factory.hpp"
#include "data/criteo.hpp"
#include "data/movielens.hpp"
#include "recsys/dlrm.hpp"
#include "recsys/youtube_dnn.hpp"
#include "serve/runtime.hpp"
#include "serve/servable_ctr.hpp"
#include "serve/shard_map.hpp"
#include "serve/stage_pipeline.hpp"
#include "serve_test_util.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using device::Ns;
using serve::ArrivalProcess;
using serve::Batch;
using serve::CtrServable;
using serve::LoadGenConfig;
using serve::LoadGenerator;
using serve::Request;
using serve::ServingConfig;
using serve::ServingRuntime;
using serve::ShardMap;
using serve::ShardRouter;
using serve::StagePipeline;

Request make_request(std::size_t id, double t, std::size_t user = 0) {
  Request r;
  r.id = id;
  r.user = user;
  r.client = id;
  r.enqueue = Ns{t};
  return r;
}

// --- ShardMap --------------------------------------------------------------

TEST(ShardMap, UniformMatchesModulo) {
  const auto map = ShardMap::uniform(4);
  EXPECT_EQ(map.shards(), 4u);
  EXPECT_EQ(map.buckets(), 4u);
  for (std::size_t item = 0; item < 1000; ++item)
    EXPECT_EQ(map.shard_of(item), item % 4);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_DOUBLE_EQ(map.share(s), 0.25);
}

TEST(ShardMap, WeightedSharesProportionalToCapability) {
  const std::vector<double> w = {3.0, 1.0, 0.0, 2.0};
  const auto map = ShardMap::weighted(w, 64);
  EXPECT_EQ(map.shards(), 4u);
  EXPECT_NEAR(map.share(0), 0.5, 1e-9);
  EXPECT_NEAR(map.share(1), 1.0 / 6.0, 0.01);
  EXPECT_DOUBLE_EQ(map.share(2), 0.0);  // zero weight owns nothing
  EXPECT_NEAR(map.share(3), 1.0 / 3.0, 0.01);
  double total = 0.0;
  for (std::size_t s = 0; s < 4; ++s) total += map.share(s);
  EXPECT_DOUBLE_EQ(total, 1.0);
  // The zero-weight shard never receives an item.
  for (std::size_t item = 0; item < 4096; ++item)
    EXPECT_NE(map.shard_of(item), 2u);
}

TEST(ShardMap, PartitionIsDisjointCover) {
  const std::vector<double> w = {1.0, 4.0, 2.0};
  const auto map = ShardMap::weighted(w, 32);
  std::vector<std::size_t> items;
  for (std::size_t i = 0; i < 500; ++i) items.push_back(i * 7 + 3);

  const auto slices = map.partition(items);
  ASSERT_EQ(slices.size(), 3u);
  std::multiset<std::size_t> covered;
  for (std::size_t s = 0; s < slices.size(); ++s)
    for (std::size_t item : slices[s]) {
      EXPECT_EQ(map.shard_of(item), s);
      covered.insert(item);
    }
  EXPECT_EQ(covered.size(), items.size());  // disjoint (no duplicates)
  for (std::size_t item : items) EXPECT_EQ(covered.count(item), 1u);
}

TEST(ShardMap, FromCostsFavorsFasterShards) {
  const std::vector<Ns> costs = {Ns{100.0}, Ns{50.0}, Ns{200.0}};
  const auto map = ShardMap::from_costs(costs, 64);
  // Capability = 1/cost: shares 2/7, 4/7, 1/7.
  EXPECT_NEAR(map.share(0), 2.0 / 7.0, 0.01);
  EXPECT_NEAR(map.share(1), 4.0 / 7.0, 0.01);
  EXPECT_NEAR(map.share(2), 1.0 / 7.0, 0.01);
  // Degenerate (zero-cost oracle) input falls back to uniform.
  const std::vector<Ns> zeros(3, Ns{0.0});
  const auto uniform = ShardMap::from_costs(zeros);
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_DOUBLE_EQ(uniform.share(s), 1.0 / 3.0);
}

// --- Heterogeneous partitions over the CPU oracle --------------------------

struct FilterRankFixture {
  FilterRankFixture() {
    data::MovieLensConfig dcfg;
    dcfg.num_users = 60;
    dcfg.num_items = 90;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 51;
    ds = std::make_unique<data::MovieLensSynth>(dcfg);

    recsys::YoutubeDnnConfig mcfg;
    mcfg.seed = 53;
    model = std::make_unique<recsys::YoutubeDnn>(ds->schema(), mcfg);
    util::Xoshiro256 rng(57);
    model->train_filter_epoch(*ds, rng);
    model->train_rank_epoch(*ds, rng);

    for (std::size_t u = 0; u < ds->num_users(); ++u)
      users.push_back(model->make_context(*ds, u));

    cpu_cfg.candidates = 40;
    factory = core::cpu_backend_factory(*model, cpu_cfg);
  }

  std::unique_ptr<data::MovieLensSynth> ds;
  std::unique_ptr<recsys::YoutubeDnn> model;
  std::vector<recsys::UserContext> users;
  baseline::CpuBackendConfig cpu_cfg;
  core::BackendFactory factory;
};

TEST(StagePipeline, SkewedPartitionMatchesSingleBackend) {
  FilterRankFixture fx;
  const std::size_t k = 10;
  const auto profile = device::DeviceProfile::fefet45();
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(core::ArchConfig{}, profile));

  ShardRouter single(fx.factory, 1);
  single.bind_users(fx.users);
  StagePipeline pipe1(1, ShardRouter::pipeline_spec(), profile);

  // Heavily skewed capabilities, including a zero-weight shard that must
  // receive empty slices and still merge correctly.
  const std::vector<double> weights = {3.0, 0.0, 1.0, 6.0};
  ShardRouter sharded(fx.factory, 4);
  sharded.bind_users(fx.users);
  StagePipeline pipe4(4, ShardRouter::pipeline_spec(), profile,
                      ShardMap::weighted(weights, 16));

  Batch batch;
  batch.dispatch = Ns{0.0};
  for (std::size_t u = 0; u < 12; ++u)
    batch.requests.push_back(make_request(u, 0.0, u));

  const auto ref = pipe1.execute(batch, single, k, nullptr, timing);
  const auto got = pipe4.execute(batch, sharded, k, nullptr, timing);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].work_items, got[i].work_items);
    ASSERT_EQ(ref[i].topk.size(), got[i].topk.size()) << "query " << i;
    for (std::size_t j = 0; j < ref[i].topk.size(); ++j) {
      EXPECT_EQ(ref[i].topk[j].item, got[i].topk[j].item)
          << "query " << i << " position " << j;
      EXPECT_FLOAT_EQ(ref[i].topk[j].score, got[i].topk[j].score);
    }
  }
  // The zero-weight shard must have done no rank work at all.
  EXPECT_DOUBLE_EQ(pipe4.usage()[1].last_stage_busy().value, 0.0);
}

// --- Heterogeneous iMARS fabric (per-slot profiles) ------------------------

TEST(ShardRouter, MixedTechnologyFabricMatchesSingleBackend) {
  // Small trained model so the iMARS replicas are cheap to build.
  data::MovieLensConfig dcfg;
  dcfg.num_users = 40;
  dcfg.num_items = 64;
  dcfg.history_min = 3;
  dcfg.history_max = 6;
  dcfg.seed = 81;
  data::MovieLensSynth ds(dcfg);
  recsys::YoutubeDnnConfig mcfg;
  mcfg.seed = 83;
  recsys::YoutubeDnn model(ds.schema(), mcfg);
  util::Xoshiro256 rng(87);
  model.train_filter_epoch(ds, rng);
  model.train_rank_epoch(ds, rng);

  std::vector<recsys::UserContext> users;
  for (std::size_t u = 0; u < ds.num_users(); ++u)
    users.push_back(model.make_context(ds, u));
  std::vector<recsys::UserContext> calib(users.begin(), users.begin() + 8);

  const core::ArchConfig arch;
  core::ImarsBackendConfig icfg;
  icfg.timing = core::TimingMode::kWorstCaseSameArray;
  icfg.nns_radius = 64;
  const auto sharded_factory =
      core::imars_sharded_backend_factory(model, arch, icfg, calib);

  // One fast FeFET-22 shard next to one FeFET-45 shard.
  const auto fefet45 = device::DeviceProfile::fefet45();
  const std::vector<device::DeviceProfile> profiles = {
      device::DeviceProfile::fefet22(), fefet45};
  ShardRouter hetero(sharded_factory, profiles);
  hetero.bind_users(users);

  // The probe sees the technology difference: the FeFET-22 replica ranks
  // the same slice strictly faster, so it earns the larger item share.
  std::vector<std::size_t> probe_items;
  for (std::size_t i = 0; i < 16; ++i) probe_items.push_back(i);
  const auto costs = hetero.probe_rank_cost(users.front(), probe_items);
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_LT(costs[0].value, costs[1].value);
  const auto map = serve::ShardMap::from_costs(costs, 16);
  EXPECT_GT(map.share(0), map.share(1));

  // Technology is functionally inert: under the SAME placement, a pure
  // FeFET-45 fabric and the mixed fabric produce identical merged top-k
  // (the per-slice hardware threshold top-k makes slicing itself part of
  // the result semantics, so the baseline shares the map, isolating the
  // per-slot profile as the only difference).
  const std::vector<device::DeviceProfile> homogeneous = {fefet45, fefet45};
  ShardRouter uniform_tech(sharded_factory, homogeneous);
  uniform_tech.bind_users(users);
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(arch, fefet45));
  StagePipeline pipe_ref(2, ShardRouter::pipeline_spec(), fefet45, map);
  StagePipeline pipe_mix(2, ShardRouter::pipeline_spec(), fefet45, map);

  Batch batch;
  batch.dispatch = Ns{0.0};
  for (std::size_t u = 0; u < 6; ++u)
    batch.requests.push_back(make_request(u, 0.0, u));
  const auto ref = pipe_ref.execute(batch, uniform_tech, 8, nullptr, timing);
  const auto got = pipe_mix.execute(batch, hetero, 8, nullptr, timing);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].work_items, got[i].work_items);
    ASSERT_EQ(ref[i].topk.size(), got[i].topk.size()) << "query " << i;
    for (std::size_t j = 0; j < ref[i].topk.size(); ++j) {
      EXPECT_EQ(ref[i].topk[j].item, got[i].topk[j].item);
      EXPECT_FLOAT_EQ(ref[i].topk[j].score, got[i].topk[j].score);
    }
  }
}

// --- CTR serving parity ----------------------------------------------------

struct CtrFixture {
  CtrFixture() {
    data::CriteoConfig dcfg;
    dcfg.num_samples = 64;
    dcfg.seed = 61;
    ds = std::make_unique<data::CriteoSynth>(dcfg);

    recsys::DlrmConfig mcfg;
    mcfg.seed = 63;
    model = std::make_unique<recsys::Dlrm>(ds->schema(), mcfg);

    for (std::size_t i = 0; i < 8; ++i) calib.push_back(ds->sample(i));
    factory = core::imars_ctr_backend_factory(
        *model, core::ArchConfig{}, core::TimingMode::kWorstCaseSameArray,
        calib);
  }

  std::unique_ptr<data::CriteoSynth> ds;
  std::unique_ptr<recsys::Dlrm> model;
  std::vector<data::CriteoSample> calib;
  core::CtrBackendFactory factory;
};

TEST(CtrServable, ShardedScoresMatchSerialBackend) {
  CtrFixture fx;
  const auto profile = device::DeviceProfile::fefet45();
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(core::ArchConfig{}, profile));

  // Three shards under a skewed weighting; replicas are functionally
  // identical, so any disjoint cover must reproduce the serial scores.
  const std::vector<device::DeviceProfile> profiles(3, profile);
  CtrServable servable(fx.factory, profiles);
  std::vector<data::CriteoSample> samples;
  for (std::size_t i = 0; i < fx.ds->size(); ++i)
    samples.push_back(fx.ds->sample(i));
  servable.bind_samples(samples);
  const std::vector<double> weights = {1.0, 3.0, 2.0};
  StagePipeline pipe(3, CtrServable::pipeline_spec(), profile,
                     serve::ShardMap::weighted(weights, 16));

  Batch batch;
  batch.dispatch = Ns{0.0};
  const std::size_t n = 24;
  for (std::size_t i = 0; i < n; ++i)
    batch.requests.push_back(make_request(i, 0.0, i % samples.size()));

  const auto results = pipe.execute(batch, servable, 1, nullptr, timing);
  ASSERT_EQ(results.size(), n);

  // Serial reference: one more replica from the same factory.
  const auto serial =
      fx.factory(core::ShardSlot{0, profile});
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(results[i].topk.size(), 1u) << "query " << i;
    const auto& s = samples[batch.requests[i].user];
    const float want = serial->score(s.dense, s.sparse, nullptr);
    EXPECT_FLOAT_EQ(results[i].topk[0].score, want) << "query " << i;
    EXPECT_EQ(results[i].topk[0].item, batch.requests[i].user);
    EXPECT_GT(results[i].complete.value, 0.0);
  }
}

TEST(CtrServable, ServesThroughSharedRuntime) {
  CtrFixture fx;
  const auto profile = device::DeviceProfile::fefet45();
  std::vector<data::CriteoSample> samples;
  for (std::size_t i = 0; i < fx.ds->size(); ++i)
    samples.push_back(fx.ds->sample(i));

  const std::vector<device::DeviceProfile> profiles(2, profile);
  auto servable = std::make_unique<CtrServable>(fx.factory, profiles);
  servable->bind_samples(samples);

  ServingConfig cfg;
  cfg.k = 1;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Ns{500000.0};
  cfg.cache.capacity_rows = 2048;
  cfg.shard_weights = {2.0, 1.0};
  ServingRuntime rt(std::move(servable), cfg, core::ArchConfig{}, profile);

  LoadGenConfig lg;
  lg.clients = 8;
  lg.total_queries = 32;
  lg.num_users = samples.size();
  lg.user_zipf_s = 1.0;
  lg.seed = 67;
  LoadGenerator gen(lg);

  const auto report = rt.run(gen);
  ASSERT_EQ(report.size(), 32u);
  EXPECT_GT(report.qps(), 0.0);
  EXPECT_GT(report.cache.accesses(), 0u);
  EXPECT_GT(report.cache.hit_rate(), 0.0);  // Zipf-hot feature rows repeat
  for (const auto& q : report.queries) {
    EXPECT_EQ(q.candidates, 1u);  // one impression per query
    EXPECT_LE(q.enqueue.value, q.dispatch.value);
    EXPECT_LT(q.dispatch.value, q.complete.value);
    EXPECT_DOUBLE_EQ(q.filter_latency.value, 0.0);  // single-stage graph
    EXPECT_GT(q.rank_latency.value, 0.0);
  }
  // Single-stage usage: the capable shard carries more of the stream.
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_GT(report.rank_utilization(0), 0.0);
  EXPECT_GT(report.shards[0].last_stage_busy().value,
            report.shards[1].last_stage_busy().value);
}

// --- Async overlap determinism ---------------------------------------------

TEST(ServingRuntime, OverlapPreservesHardwareTimeReport) {
  FilterRankFixture fx;

  auto run_once = [&](bool overlap) {
    ServingConfig cfg;
    cfg.shards = 3;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{300000.0};
    cfg.cache.capacity_rows = 1024;
    cfg.overlap = overlap;
    cfg.max_inflight = 3;
    ServingRuntime rt(fx.factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = 40;
    lg.num_users = fx.users.size();
    lg.arrivals = ArrivalProcess::kOpenPoisson;
    lg.rate_qps = 2.0e5;  // well into the knee for the oracle's zero cost
    lg.seed = 71;
    LoadGenerator gen(lg);
    return rt.run(gen, fx.users);
  };

  const auto phased = run_once(false);
  const auto overlapped = run_once(true);
  serve_test::expect_reports_identical(phased, overlapped);
  EXPECT_DOUBLE_EQ(phased.p99_latency_ns(), overlapped.p99_latency_ns());
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_DOUBLE_EQ(phased.rank_utilization(s),
                     overlapped.rank_utilization(s));
}

// --- Co-resident tenants (distinct servables, one pipeline) ----------------

TEST(ServingRuntime, CoResidentTenantsServeDistinctServables) {
  FilterRankFixture fr;
  CtrFixture ctr;
  const auto profile = device::DeviceProfile::fefet45();
  const std::size_t shards = 2;
  const std::vector<device::DeviceProfile> profiles(shards, profile);

  std::vector<data::CriteoSample> samples;
  for (std::size_t i = 0; i < ctr.ds->size(); ++i)
    samples.push_back(ctr.ds->sample(i));

  // Slot 0: the interactive filter/rank tenant; slot 1: the bulk CTR
  // tenant. Both share the pipeline's shard fabric (and its ET banks).
  std::vector<std::unique_ptr<serve::ServableBackend>> servables;
  servables.push_back(std::make_unique<ShardRouter>(fr.factory, shards));
  auto ctr_servable = std::make_unique<CtrServable>(ctr.factory, profiles);
  ctr_servable->bind_samples(samples);
  servables.push_back(std::move(ctr_servable));

  ServingConfig cfg;
  cfg.k = 5;
  serve::QosClassConfig interactive;
  interactive.name = "interactive";
  interactive.max_batch = 2;
  interactive.max_wait = Ns{100000.0};
  interactive.deadline = Ns{400000.0};
  interactive.service_estimate = Ns{20000.0};
  interactive.weight = 1.0;
  interactive.servable = 0;
  serve::QosClassConfig bulk;
  bulk.name = "bulk-ctr";
  bulk.max_batch = 4;
  bulk.max_wait = Ns{200000.0};
  bulk.weight = 3.0;
  bulk.servable = 1;
  cfg.qos.classes = {interactive, bulk};
  cfg.qos.admit_window = Ns{100000.0};  // exercise gated admission too
  cfg.cache.capacity_rows = 1024;
  ServingRuntime rt(std::move(servables), cfg, core::ArchConfig{}, profile);

  // The engine concatenated both tenants' stage graphs.
  EXPECT_EQ(rt.pipeline().spec_count(), 2u);
  EXPECT_EQ(rt.pipeline().stage_offset(0), 0u);
  EXPECT_EQ(rt.pipeline().stage_offset(1), 2u);
  EXPECT_EQ(rt.servable_count(), 2u);

  serve::LoadGenConfig lg;
  lg.clients = 8;
  lg.total_queries = 36;
  lg.num_users = std::min(fr.users.size(), samples.size());
  lg.user_zipf_s = 0.9;
  lg.class_mix = {0.4, 0.6};
  lg.arrivals = ArrivalProcess::kOpenPoisson;
  lg.rate_qps = 2.0e5;
  lg.seed = 93;
  LoadGenerator gen(lg);
  const auto report = rt.run(gen, fr.users);
  ASSERT_EQ(report.size(), 36u);
  ASSERT_EQ(report.classes.size(), 2u);
  EXPECT_GT(report.classes[0].queries, 0u);
  EXPECT_GT(report.classes[1].queries, 0u);
  // Per-shard usage concatenates both tenants' stages (2 FR + 1 CTR), and
  // the utilization helpers resolve per slot: slot 0's rank stage is the
  // filter/rank tenant's, slot 1 is the single-stage CTR tenant (which
  // therefore has no filter stage).
  ASSERT_EQ(report.stage_offsets.size(), 2u);
  for (const auto& shard : report.shards)
    EXPECT_EQ(shard.stage_busy.size(), 3u);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_DOUBLE_EQ(report.rank_utilization(s, 0) * report.makespan.value,
                     report.shards[s].stage_busy[1].value);
    EXPECT_DOUBLE_EQ(report.rank_utilization(s, 1) * report.makespan.value,
                     report.shards[s].stage_busy[2].value);
    EXPECT_DOUBLE_EQ(report.filter_utilization(s, 1), 0.0);
  }

  // Filter/rank tenant: merged top-k must equal a dedicated single-shard
  // reference fabric (co-residency never leaks into results).
  ShardRouter single(fr.factory, 1);
  single.bind_users(fr.users);
  StagePipeline pipe1(1, ShardRouter::pipeline_spec(), profile);
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(core::ArchConfig{}, profile));
  // Serial CTR reference replica from the same factory.
  const auto serial = ctr.factory(core::ShardSlot{0, profile});

  for (const auto& q : report.queries) {
    if (q.qos_class == 0) {
      Batch ref_batch;
      ref_batch.dispatch = Ns{0.0};
      ref_batch.requests.push_back(make_request(q.id, 0.0, q.user));
      const auto ref =
          pipe1.execute(ref_batch, single, cfg.k, nullptr, timing);
      ASSERT_EQ(ref.size(), 1u);
      ASSERT_EQ(q.topk.size(), ref[0].topk.size()) << "query " << q.id;
      for (std::size_t j = 0; j < q.topk.size(); ++j) {
        EXPECT_EQ(q.topk[j].item, ref[0].topk[j].item) << "query " << q.id;
        EXPECT_FLOAT_EQ(q.topk[j].score, ref[0].topk[j].score);
      }
    } else {
      const auto& s = samples[q.user];
      ASSERT_EQ(q.topk.size(), 1u) << "query " << q.id;
      EXPECT_EQ(q.topk[0].item, q.user);
      EXPECT_FLOAT_EQ(q.topk[0].score,
                      serial->score(s.dense, s.sparse, nullptr));
    }
  }
}

// --- Poisson open-loop arrivals --------------------------------------------

TEST(LoadGenerator, PoissonArrivalsAreSeededAndRateConsistent) {
  LoadGenConfig lg;
  lg.clients = 4;
  lg.total_queries = 4000;
  lg.num_users = 50;
  lg.arrivals = ArrivalProcess::kOpenPoisson;
  lg.rate_qps = 1.0e6;  // mean gap 1 us
  lg.seed = 73;

  LoadGenerator gen(lg);
  std::vector<Request> stream;
  while (auto r = gen.next_arrival()) stream.push_back(*r);
  ASSERT_EQ(stream.size(), lg.total_queries);

  double prev = -1.0;
  for (const auto& r : stream) {
    EXPECT_GE(r.enqueue.value, prev);  // non-decreasing arrival times
    EXPECT_LT(r.user, lg.num_users);
    prev = r.enqueue.value;
  }
  // Mean inter-arrival within 5% of 1/rate (4000 draws).
  const double mean_gap_ns =
      stream.back().enqueue.value / static_cast<double>(stream.size());
  EXPECT_NEAR(mean_gap_ns, 1000.0, 50.0);

  // Same seed reproduces the stream bit-for-bit.
  LoadGenerator gen2(lg);
  for (const auto& r : stream) {
    const auto r2 = gen2.next_arrival();
    ASSERT_TRUE(r2.has_value());
    EXPECT_DOUBLE_EQ(r.enqueue.value, r2->enqueue.value);
    EXPECT_EQ(r.user, r2->user);
  }
}

TEST(LoadGenerator, ClassMixLabelsWithoutShiftingUserDraws) {
  LoadGenConfig plain;
  plain.clients = 4;
  plain.total_queries = 600;
  plain.num_users = 40;
  plain.arrivals = ArrivalProcess::kOpenPoisson;
  plain.rate_qps = 1.0e6;
  plain.seed = 31;
  LoadGenConfig mixed = plain;
  mixed.class_mix = {0.1, 0.6, 0.3};

  LoadGenerator a(plain), b(mixed);
  std::vector<std::size_t> counts(3, 0);
  while (auto ra = a.next_arrival()) {
    const auto rb = b.next_arrival();
    ASSERT_TRUE(rb.has_value());
    // The class draw uses its own stream: users and arrival times are
    // bit-identical with and without a mix.
    EXPECT_EQ(ra->user, rb->user);
    EXPECT_DOUBLE_EQ(ra->enqueue.value, rb->enqueue.value);
    EXPECT_EQ(ra->qos_class, 0u);
    ASSERT_LT(rb->qos_class, 3u);
    ++counts[rb->qos_class];
  }
  // Labels roughly follow the configured shares (600 draws).
  EXPECT_NEAR(static_cast<double>(counts[1]) / 600.0, 0.6, 0.1);
  EXPECT_GT(counts[0], 0u);
  EXPECT_GT(counts[2], 0u);

  // Same seed reproduces the labels bit-for-bit.
  LoadGenerator c(mixed), d(mixed);
  while (auto rc = c.next_arrival())
    EXPECT_EQ(rc->qos_class, d.next_arrival()->qos_class);
}

TEST(LoadGenerator, TraceReplayIsVerbatim) {
  std::vector<Request> trace;
  for (std::size_t i = 0; i < 5; ++i) {
    Request r;
    r.id = 100 + i;
    r.user = i % 3;
    r.qos_class = i % 2;
    r.enqueue = Ns{10.0 * static_cast<double>(i)};
    trace.push_back(r);
  }
  LoadGenConfig lg;
  lg.num_users = 3;
  lg.arrivals = ArrivalProcess::kTrace;
  lg.trace = trace;
  LoadGenerator gen(lg);
  for (const auto& want : trace) {
    const auto got = gen.next_arrival();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->id, want.id);
    EXPECT_EQ(got->user, want.user);
    EXPECT_EQ(got->qos_class, want.qos_class);
    EXPECT_DOUBLE_EQ(got->enqueue.value, want.enqueue.value);
  }
  EXPECT_FALSE(gen.next_arrival().has_value());

  // Out-of-order traces are rejected at construction.
  std::swap(lg.trace[0], lg.trace[4]);
  EXPECT_THROW(LoadGenerator bad(lg), std::runtime_error);
}

TEST(LoadGenerator, ModesRejectWrongEntryPoint) {
  LoadGenConfig closed;
  closed.num_users = 4;
  LoadGenerator cgen(closed);
  EXPECT_THROW(cgen.next_arrival(), std::runtime_error);

  LoadGenConfig open = closed;
  open.arrivals = ArrivalProcess::kOpenPoisson;
  open.rate_qps = 1e5;
  LoadGenerator ogen(open);
  EXPECT_THROW(ogen.next(0, Ns{0.0}), std::runtime_error);
}

}  // namespace
}  // namespace imars
