// Tests for the backend-agnostic staged-pipeline engine (src/serve/):
// ShardMap disjoint covers and capability weighting, heterogeneous-
// partition merge correctness against the single-backend oracle, CTR
// serving parity against serial ImarsCtrBackend::score, async stage-
// overlap determinism, Poisson open-loop arrivals, and the stage DAG:
// spec validation, diamond-graph fan-out/join timing, tower-parallel CTR
// graphs, graph-aware QoS service estimates, and the DAG<->linear
// bit-parity grid.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "baseline/cpu_backend.hpp"
#include "core/backend_factory.hpp"
#include "data/criteo.hpp"
#include "data/movielens.hpp"
#include "recsys/dlrm.hpp"
#include "recsys/youtube_dnn.hpp"
#include "serve/runtime.hpp"
#include "serve/servable_ctr.hpp"
#include "serve/shard_map.hpp"
#include "serve/stage_pipeline.hpp"
#include "serve_test_util.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using device::Ns;
using serve::ArrivalProcess;
using serve::Batch;
using serve::CtrGraph;
using serve::CtrServable;
using serve::LoadGenConfig;
using serve::LoadGenerator;
using serve::PipelineSpec;
using serve::Request;
using serve::ServingConfig;
using serve::ServingRuntime;
using serve::ShardMap;
using serve::ShardRouter;
using serve::StageKind;
using serve::StagePipeline;
using serve::StageSpec;

Request make_request(std::size_t id, double t, std::size_t user = 0) {
  Request r;
  r.id = id;
  r.user = user;
  r.client = id;
  r.enqueue = Ns{t};
  return r;
}

// --- ShardMap --------------------------------------------------------------

TEST(ShardMap, UniformMatchesModulo) {
  const auto map = ShardMap::uniform(4);
  EXPECT_EQ(map.shards(), 4u);
  EXPECT_EQ(map.buckets(), 4u);
  for (std::size_t item = 0; item < 1000; ++item)
    EXPECT_EQ(map.shard_of(item), item % 4);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_DOUBLE_EQ(map.share(s), 0.25);
}

TEST(ShardMap, WeightedSharesProportionalToCapability) {
  const std::vector<double> w = {3.0, 1.0, 0.0, 2.0};
  const auto map = ShardMap::weighted(w, 64);
  EXPECT_EQ(map.shards(), 4u);
  EXPECT_NEAR(map.share(0), 0.5, 1e-9);
  EXPECT_NEAR(map.share(1), 1.0 / 6.0, 0.01);
  EXPECT_DOUBLE_EQ(map.share(2), 0.0);  // zero weight owns nothing
  EXPECT_NEAR(map.share(3), 1.0 / 3.0, 0.01);
  double total = 0.0;
  for (std::size_t s = 0; s < 4; ++s) total += map.share(s);
  EXPECT_DOUBLE_EQ(total, 1.0);
  // The zero-weight shard never receives an item.
  for (std::size_t item = 0; item < 4096; ++item)
    EXPECT_NE(map.shard_of(item), 2u);
}

TEST(ShardMap, PartitionIsDisjointCover) {
  const std::vector<double> w = {1.0, 4.0, 2.0};
  const auto map = ShardMap::weighted(w, 32);
  std::vector<std::size_t> items;
  for (std::size_t i = 0; i < 500; ++i) items.push_back(i * 7 + 3);

  const auto slices = map.partition(items);
  ASSERT_EQ(slices.size(), 3u);
  std::multiset<std::size_t> covered;
  for (std::size_t s = 0; s < slices.size(); ++s)
    for (std::size_t item : slices[s]) {
      EXPECT_EQ(map.shard_of(item), s);
      covered.insert(item);
    }
  EXPECT_EQ(covered.size(), items.size());  // disjoint (no duplicates)
  for (std::size_t item : items) EXPECT_EQ(covered.count(item), 1u);
}

TEST(ShardMap, FromCostsFavorsFasterShards) {
  const std::vector<Ns> costs = {Ns{100.0}, Ns{50.0}, Ns{200.0}};
  const auto map = ShardMap::from_costs(costs, 64);
  // Capability = 1/cost: shares 2/7, 4/7, 1/7.
  EXPECT_NEAR(map.share(0), 2.0 / 7.0, 0.01);
  EXPECT_NEAR(map.share(1), 4.0 / 7.0, 0.01);
  EXPECT_NEAR(map.share(2), 1.0 / 7.0, 0.01);
  // Degenerate (zero-cost oracle) input falls back to uniform.
  const std::vector<Ns> zeros(3, Ns{0.0});
  const auto uniform = ShardMap::from_costs(zeros);
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_DOUBLE_EQ(uniform.share(s), 1.0 / 3.0);
}

// --- Heterogeneous partitions over the CPU oracle --------------------------

struct FilterRankFixture {
  FilterRankFixture() {
    data::MovieLensConfig dcfg;
    dcfg.num_users = 60;
    dcfg.num_items = 90;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 51;
    ds = std::make_unique<data::MovieLensSynth>(dcfg);

    recsys::YoutubeDnnConfig mcfg;
    mcfg.seed = 53;
    model = std::make_unique<recsys::YoutubeDnn>(ds->schema(), mcfg);
    util::Xoshiro256 rng(57);
    model->train_filter_epoch(*ds, rng);
    model->train_rank_epoch(*ds, rng);

    for (std::size_t u = 0; u < ds->num_users(); ++u)
      users.push_back(model->make_context(*ds, u));

    cpu_cfg.candidates = 40;
    factory = core::cpu_backend_factory(*model, cpu_cfg);
  }

  std::unique_ptr<data::MovieLensSynth> ds;
  std::unique_ptr<recsys::YoutubeDnn> model;
  std::vector<recsys::UserContext> users;
  baseline::CpuBackendConfig cpu_cfg;
  core::BackendFactory factory;
};

TEST(StagePipeline, SkewedPartitionMatchesSingleBackend) {
  FilterRankFixture fx;
  const std::size_t k = 10;
  const auto profile = device::DeviceProfile::fefet45();
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(core::ArchConfig{}, profile));

  ShardRouter single(fx.factory, 1);
  single.bind_users(fx.users);
  StagePipeline pipe1(1, ShardRouter::pipeline_spec(), profile);

  // Heavily skewed capabilities, including a zero-weight shard that must
  // receive empty slices and still merge correctly.
  const std::vector<double> weights = {3.0, 0.0, 1.0, 6.0};
  ShardRouter sharded(fx.factory, 4);
  sharded.bind_users(fx.users);
  StagePipeline pipe4(4, ShardRouter::pipeline_spec(), profile,
                      ShardMap::weighted(weights, 16));

  Batch batch;
  batch.dispatch = Ns{0.0};
  for (std::size_t u = 0; u < 12; ++u)
    batch.requests.push_back(make_request(u, 0.0, u));

  const auto ref = pipe1.execute(batch, single, k, nullptr, timing);
  const auto got = pipe4.execute(batch, sharded, k, nullptr, timing);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].work_items, got[i].work_items);
    ASSERT_EQ(ref[i].topk.size(), got[i].topk.size()) << "query " << i;
    for (std::size_t j = 0; j < ref[i].topk.size(); ++j) {
      EXPECT_EQ(ref[i].topk[j].item, got[i].topk[j].item)
          << "query " << i << " position " << j;
      EXPECT_FLOAT_EQ(ref[i].topk[j].score, got[i].topk[j].score);
    }
  }
  // The zero-weight shard must have done no rank work at all.
  EXPECT_DOUBLE_EQ(pipe4.usage()[1].last_stage_busy().value, 0.0);
}

// --- Heterogeneous iMARS fabric (per-slot profiles) ------------------------

TEST(ShardRouter, MixedTechnologyFabricMatchesSingleBackend) {
  // Small trained model so the iMARS replicas are cheap to build.
  data::MovieLensConfig dcfg;
  dcfg.num_users = 40;
  dcfg.num_items = 64;
  dcfg.history_min = 3;
  dcfg.history_max = 6;
  dcfg.seed = 81;
  data::MovieLensSynth ds(dcfg);
  recsys::YoutubeDnnConfig mcfg;
  mcfg.seed = 83;
  recsys::YoutubeDnn model(ds.schema(), mcfg);
  util::Xoshiro256 rng(87);
  model.train_filter_epoch(ds, rng);
  model.train_rank_epoch(ds, rng);

  std::vector<recsys::UserContext> users;
  for (std::size_t u = 0; u < ds.num_users(); ++u)
    users.push_back(model.make_context(ds, u));
  std::vector<recsys::UserContext> calib(users.begin(), users.begin() + 8);

  const core::ArchConfig arch;
  core::ImarsBackendConfig icfg;
  icfg.timing = core::TimingMode::kWorstCaseSameArray;
  icfg.nns_radius = 64;
  const auto sharded_factory =
      core::imars_sharded_backend_factory(model, arch, icfg, calib);

  // One fast FeFET-22 shard next to one FeFET-45 shard.
  const auto fefet45 = device::DeviceProfile::fefet45();
  const std::vector<device::DeviceProfile> profiles = {
      device::DeviceProfile::fefet22(), fefet45};
  ShardRouter hetero(sharded_factory, profiles);
  hetero.bind_users(users);

  // The probe sees the technology difference: the FeFET-22 replica ranks
  // the same slice strictly faster, so it earns the larger item share.
  std::vector<std::size_t> probe_items;
  for (std::size_t i = 0; i < 16; ++i) probe_items.push_back(i);
  const auto costs = hetero.probe_rank_cost(users.front(), probe_items);
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_LT(costs[0].value, costs[1].value);
  const auto map = serve::ShardMap::from_costs(costs, 16);
  EXPECT_GT(map.share(0), map.share(1));

  // Technology is functionally inert: under the SAME placement, a pure
  // FeFET-45 fabric and the mixed fabric produce identical merged top-k
  // (the per-slice hardware threshold top-k makes slicing itself part of
  // the result semantics, so the baseline shares the map, isolating the
  // per-slot profile as the only difference).
  const std::vector<device::DeviceProfile> homogeneous = {fefet45, fefet45};
  ShardRouter uniform_tech(sharded_factory, homogeneous);
  uniform_tech.bind_users(users);
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(arch, fefet45));
  StagePipeline pipe_ref(2, ShardRouter::pipeline_spec(), fefet45, map);
  StagePipeline pipe_mix(2, ShardRouter::pipeline_spec(), fefet45, map);

  Batch batch;
  batch.dispatch = Ns{0.0};
  for (std::size_t u = 0; u < 6; ++u)
    batch.requests.push_back(make_request(u, 0.0, u));
  const auto ref = pipe_ref.execute(batch, uniform_tech, 8, nullptr, timing);
  const auto got = pipe_mix.execute(batch, hetero, 8, nullptr, timing);
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i].work_items, got[i].work_items);
    ASSERT_EQ(ref[i].topk.size(), got[i].topk.size()) << "query " << i;
    for (std::size_t j = 0; j < ref[i].topk.size(); ++j) {
      EXPECT_EQ(ref[i].topk[j].item, got[i].topk[j].item);
      EXPECT_FLOAT_EQ(ref[i].topk[j].score, got[i].topk[j].score);
    }
  }
}

// --- CTR serving parity ----------------------------------------------------

struct CtrFixture {
  CtrFixture() {
    data::CriteoConfig dcfg;
    dcfg.num_samples = 64;
    dcfg.seed = 61;
    ds = std::make_unique<data::CriteoSynth>(dcfg);

    recsys::DlrmConfig mcfg;
    mcfg.seed = 63;
    model = std::make_unique<recsys::Dlrm>(ds->schema(), mcfg);

    for (std::size_t i = 0; i < 8; ++i) calib.push_back(ds->sample(i));
    factory = core::imars_ctr_backend_factory(
        *model, core::ArchConfig{}, core::TimingMode::kWorstCaseSameArray,
        calib);
  }

  std::unique_ptr<data::CriteoSynth> ds;
  std::unique_ptr<recsys::Dlrm> model;
  std::vector<data::CriteoSample> calib;
  core::CtrBackendFactory factory;
};

TEST(CtrServable, ShardedScoresMatchSerialBackend) {
  CtrFixture fx;
  const auto profile = device::DeviceProfile::fefet45();
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(core::ArchConfig{}, profile));

  // Three shards under a skewed weighting; replicas are functionally
  // identical, so any disjoint cover must reproduce the serial scores.
  const std::vector<device::DeviceProfile> profiles(3, profile);
  CtrServable servable(fx.factory, profiles);
  std::vector<data::CriteoSample> samples;
  for (std::size_t i = 0; i < fx.ds->size(); ++i)
    samples.push_back(fx.ds->sample(i));
  servable.bind_samples(samples);
  const std::vector<double> weights = {1.0, 3.0, 2.0};
  StagePipeline pipe(3, CtrServable::pipeline_spec(), profile,
                     serve::ShardMap::weighted(weights, 16));

  Batch batch;
  batch.dispatch = Ns{0.0};
  const std::size_t n = 24;
  for (std::size_t i = 0; i < n; ++i)
    batch.requests.push_back(make_request(i, 0.0, i % samples.size()));

  const auto results = pipe.execute(batch, servable, 1, nullptr, timing);
  ASSERT_EQ(results.size(), n);

  // Serial reference: one more replica from the same factory.
  const auto serial =
      fx.factory(core::ShardSlot{0, profile});
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(results[i].topk.size(), 1u) << "query " << i;
    const auto& s = samples[batch.requests[i].user];
    const float want = serial->score(s.dense, s.sparse, nullptr);
    EXPECT_FLOAT_EQ(results[i].topk[0].score, want) << "query " << i;
    EXPECT_EQ(results[i].topk[0].item, batch.requests[i].user);
    EXPECT_GT(results[i].complete.value, 0.0);
  }
}

TEST(CtrServable, ServesThroughSharedRuntime) {
  CtrFixture fx;
  const auto profile = device::DeviceProfile::fefet45();
  std::vector<data::CriteoSample> samples;
  for (std::size_t i = 0; i < fx.ds->size(); ++i)
    samples.push_back(fx.ds->sample(i));

  const std::vector<device::DeviceProfile> profiles(2, profile);
  auto servable = std::make_unique<CtrServable>(fx.factory, profiles);
  servable->bind_samples(samples);

  ServingConfig cfg;
  cfg.k = 1;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Ns{500000.0};
  cfg.cache.capacity_rows = 2048;
  cfg.shard_weights = {2.0, 1.0};
  ServingRuntime rt(std::move(servable), cfg, core::ArchConfig{}, profile);

  LoadGenConfig lg;
  lg.clients = 8;
  lg.total_queries = 32;
  lg.num_users = samples.size();
  lg.user_zipf_s = 1.0;
  lg.seed = 67;
  LoadGenerator gen(lg);

  const auto report = rt.run(gen);
  ASSERT_EQ(report.size(), 32u);
  EXPECT_GT(report.qps(), 0.0);
  EXPECT_GT(report.cache.accesses(), 0u);
  EXPECT_GT(report.cache.hit_rate(), 0.0);  // Zipf-hot feature rows repeat
  for (const auto& q : report.queries) {
    EXPECT_EQ(q.candidates, 1u);  // one impression per query
    EXPECT_LE(q.enqueue.value, q.dispatch.value);
    EXPECT_LT(q.dispatch.value, q.complete.value);
    EXPECT_DOUBLE_EQ(q.filter_latency.value, 0.0);  // single-stage graph
    EXPECT_GT(q.rank_latency.value, 0.0);
  }
  // Single-stage usage: the capable shard carries more of the stream.
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_GT(report.rank_utilization(0), 0.0);
  EXPECT_GT(report.shards[0].last_stage_busy().value,
            report.shards[1].last_stage_busy().value);
}

// --- Async overlap determinism ---------------------------------------------

TEST(ServingRuntime, OverlapPreservesHardwareTimeReport) {
  FilterRankFixture fx;

  auto run_once = [&](bool overlap) {
    ServingConfig cfg;
    cfg.shards = 3;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{300000.0};
    cfg.cache.capacity_rows = 1024;
    cfg.overlap = overlap;
    cfg.max_inflight = 3;
    ServingRuntime rt(fx.factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = 40;
    lg.num_users = fx.users.size();
    lg.arrivals = ArrivalProcess::kOpenPoisson;
    lg.rate_qps = 2.0e5;  // well into the knee for the oracle's zero cost
    lg.seed = 71;
    LoadGenerator gen(lg);
    return rt.run(gen, fx.users);
  };

  const auto phased = run_once(false);
  const auto overlapped = run_once(true);
  serve_test::expect_reports_identical(phased, overlapped);
  EXPECT_DOUBLE_EQ(phased.p99_latency_ns(), overlapped.p99_latency_ns());
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_DOUBLE_EQ(phased.rank_utilization(s),
                     overlapped.rank_utilization(s));
}

// --- Co-resident tenants (distinct servables, one pipeline) ----------------

TEST(ServingRuntime, CoResidentTenantsServeDistinctServables) {
  FilterRankFixture fr;
  CtrFixture ctr;
  const auto profile = device::DeviceProfile::fefet45();
  const std::size_t shards = 2;
  const std::vector<device::DeviceProfile> profiles(shards, profile);

  std::vector<data::CriteoSample> samples;
  for (std::size_t i = 0; i < ctr.ds->size(); ++i)
    samples.push_back(ctr.ds->sample(i));

  // Slot 0: the interactive filter/rank tenant; slot 1: the bulk CTR
  // tenant. Both share the pipeline's shard fabric (and its ET banks).
  std::vector<std::unique_ptr<serve::ServableBackend>> servables;
  servables.push_back(std::make_unique<ShardRouter>(fr.factory, shards));
  auto ctr_servable = std::make_unique<CtrServable>(ctr.factory, profiles);
  ctr_servable->bind_samples(samples);
  servables.push_back(std::move(ctr_servable));

  ServingConfig cfg;
  cfg.k = 5;
  serve::QosClassConfig interactive;
  interactive.name = "interactive";
  interactive.max_batch = 2;
  interactive.max_wait = Ns{100000.0};
  interactive.deadline = Ns{400000.0};
  interactive.service_estimate = Ns{20000.0};
  interactive.weight = 1.0;
  interactive.servable = 0;
  serve::QosClassConfig bulk;
  bulk.name = "bulk-ctr";
  bulk.max_batch = 4;
  bulk.max_wait = Ns{200000.0};
  bulk.weight = 3.0;
  bulk.servable = 1;
  cfg.qos.classes = {interactive, bulk};
  cfg.qos.admit_window = Ns{100000.0};  // exercise gated admission too
  cfg.cache.capacity_rows = 1024;
  ServingRuntime rt(std::move(servables), cfg, core::ArchConfig{}, profile);

  // The engine concatenated both tenants' stage graphs.
  EXPECT_EQ(rt.pipeline().spec_count(), 2u);
  EXPECT_EQ(rt.pipeline().stage_offset(0), 0u);
  EXPECT_EQ(rt.pipeline().stage_offset(1), 2u);
  EXPECT_EQ(rt.servable_count(), 2u);

  serve::LoadGenConfig lg;
  lg.clients = 8;
  lg.total_queries = 36;
  lg.num_users = std::min(fr.users.size(), samples.size());
  lg.user_zipf_s = 0.9;
  lg.class_mix = {0.4, 0.6};
  lg.arrivals = ArrivalProcess::kOpenPoisson;
  lg.rate_qps = 2.0e5;
  lg.seed = 93;
  LoadGenerator gen(lg);
  const auto report = rt.run(gen, fr.users);
  ASSERT_EQ(report.size(), 36u);
  ASSERT_EQ(report.classes.size(), 2u);
  EXPECT_GT(report.classes[0].queries, 0u);
  EXPECT_GT(report.classes[1].queries, 0u);
  // Per-shard usage concatenates both tenants' stages (2 FR + 1 CTR), and
  // the utilization helpers resolve per slot: slot 0's rank stage is the
  // filter/rank tenant's, slot 1 is the single-stage CTR tenant (which
  // therefore has no filter stage).
  ASSERT_EQ(report.stage_offsets.size(), 2u);
  for (const auto& shard : report.shards)
    EXPECT_EQ(shard.stage_busy.size(), 3u);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_DOUBLE_EQ(report.rank_utilization(s, 0) * report.makespan.value,
                     report.shards[s].stage_busy[1].value);
    EXPECT_DOUBLE_EQ(report.rank_utilization(s, 1) * report.makespan.value,
                     report.shards[s].stage_busy[2].value);
    EXPECT_DOUBLE_EQ(report.filter_utilization(s, 1), 0.0);
  }

  // Filter/rank tenant: merged top-k must equal a dedicated single-shard
  // reference fabric (co-residency never leaks into results).
  ShardRouter single(fr.factory, 1);
  single.bind_users(fr.users);
  StagePipeline pipe1(1, ShardRouter::pipeline_spec(), profile);
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(core::ArchConfig{}, profile));
  // Serial CTR reference replica from the same factory.
  const auto serial = ctr.factory(core::ShardSlot{0, profile});

  for (const auto& q : report.queries) {
    if (q.qos_class == 0) {
      Batch ref_batch;
      ref_batch.dispatch = Ns{0.0};
      ref_batch.requests.push_back(make_request(q.id, 0.0, q.user));
      const auto ref =
          pipe1.execute(ref_batch, single, cfg.k, nullptr, timing);
      ASSERT_EQ(ref.size(), 1u);
      ASSERT_EQ(q.topk.size(), ref[0].topk.size()) << "query " << q.id;
      for (std::size_t j = 0; j < q.topk.size(); ++j) {
        EXPECT_EQ(q.topk[j].item, ref[0].topk[j].item) << "query " << q.id;
        EXPECT_FLOAT_EQ(q.topk[j].score, ref[0].topk[j].score);
      }
    } else {
      const auto& s = samples[q.user];
      ASSERT_EQ(q.topk.size(), 1u) << "query " << q.id;
      EXPECT_EQ(q.topk[0].item, q.user);
      EXPECT_FLOAT_EQ(q.topk[0].score,
                      serial->score(s.dense, s.sparse, nullptr));
    }
  }
}

// --- Poisson open-loop arrivals --------------------------------------------

TEST(LoadGenerator, PoissonArrivalsAreSeededAndRateConsistent) {
  LoadGenConfig lg;
  lg.clients = 4;
  lg.total_queries = 4000;
  lg.num_users = 50;
  lg.arrivals = ArrivalProcess::kOpenPoisson;
  lg.rate_qps = 1.0e6;  // mean gap 1 us
  lg.seed = 73;

  LoadGenerator gen(lg);
  std::vector<Request> stream;
  while (auto r = gen.next_arrival()) stream.push_back(*r);
  ASSERT_EQ(stream.size(), lg.total_queries);

  double prev = -1.0;
  for (const auto& r : stream) {
    EXPECT_GE(r.enqueue.value, prev);  // non-decreasing arrival times
    EXPECT_LT(r.user, lg.num_users);
    prev = r.enqueue.value;
  }
  // Mean inter-arrival within 5% of 1/rate (4000 draws).
  const double mean_gap_ns =
      stream.back().enqueue.value / static_cast<double>(stream.size());
  EXPECT_NEAR(mean_gap_ns, 1000.0, 50.0);

  // Same seed reproduces the stream bit-for-bit.
  LoadGenerator gen2(lg);
  for (const auto& r : stream) {
    const auto r2 = gen2.next_arrival();
    ASSERT_TRUE(r2.has_value());
    EXPECT_DOUBLE_EQ(r.enqueue.value, r2->enqueue.value);
    EXPECT_EQ(r.user, r2->user);
  }
}

TEST(LoadGenerator, ClassMixLabelsWithoutShiftingUserDraws) {
  LoadGenConfig plain;
  plain.clients = 4;
  plain.total_queries = 600;
  plain.num_users = 40;
  plain.arrivals = ArrivalProcess::kOpenPoisson;
  plain.rate_qps = 1.0e6;
  plain.seed = 31;
  LoadGenConfig mixed = plain;
  mixed.class_mix = {0.1, 0.6, 0.3};

  LoadGenerator a(plain), b(mixed);
  std::vector<std::size_t> counts(3, 0);
  while (auto ra = a.next_arrival()) {
    const auto rb = b.next_arrival();
    ASSERT_TRUE(rb.has_value());
    // The class draw uses its own stream: users and arrival times are
    // bit-identical with and without a mix.
    EXPECT_EQ(ra->user, rb->user);
    EXPECT_DOUBLE_EQ(ra->enqueue.value, rb->enqueue.value);
    EXPECT_EQ(ra->qos_class, 0u);
    ASSERT_LT(rb->qos_class, 3u);
    ++counts[rb->qos_class];
  }
  // Labels roughly follow the configured shares (600 draws).
  EXPECT_NEAR(static_cast<double>(counts[1]) / 600.0, 0.6, 0.1);
  EXPECT_GT(counts[0], 0u);
  EXPECT_GT(counts[2], 0u);

  // Same seed reproduces the labels bit-for-bit.
  LoadGenerator c(mixed), d(mixed);
  while (auto rc = c.next_arrival())
    EXPECT_EQ(rc->qos_class, d.next_arrival()->qos_class);
}

TEST(LoadGenerator, TraceReplayIsVerbatim) {
  std::vector<Request> trace;
  for (std::size_t i = 0; i < 5; ++i) {
    Request r;
    r.id = 100 + i;
    r.user = i % 3;
    r.qos_class = i % 2;
    r.enqueue = Ns{10.0 * static_cast<double>(i)};
    trace.push_back(r);
  }
  LoadGenConfig lg;
  lg.num_users = 3;
  lg.arrivals = ArrivalProcess::kTrace;
  lg.trace = trace;
  LoadGenerator gen(lg);
  for (const auto& want : trace) {
    const auto got = gen.next_arrival();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->id, want.id);
    EXPECT_EQ(got->user, want.user);
    EXPECT_EQ(got->qos_class, want.qos_class);
    EXPECT_DOUBLE_EQ(got->enqueue.value, want.enqueue.value);
  }
  EXPECT_FALSE(gen.next_arrival().has_value());

  // Out-of-order traces are rejected at construction.
  std::swap(lg.trace[0], lg.trace[4]);
  EXPECT_THROW(LoadGenerator bad(lg), std::runtime_error);
}

// --- Stage-DAG spec validation ---------------------------------------------

TEST(PipelineSpec, RejectsMalformedGraphs) {
  PipelineSpec empty;
  EXPECT_THROW(empty.resolve(), Error);

  PipelineSpec cycle;
  cycle.stages = {{"a", StageKind::kReplicated, {"b"}},
                  {"b", StageKind::kSharded, {"a"}}};
  EXPECT_THROW(cycle.resolve(), Error);

  PipelineSpec self_dep;
  self_dep.stages = {{"a", StageKind::kReplicated, {"a"}}};
  EXPECT_THROW(self_dep.resolve(), Error);

  PipelineSpec unknown;
  unknown.stages = {{"a", StageKind::kReplicated, {}},
                    {"b", StageKind::kSharded, {"nope"}}};
  EXPECT_THROW(unknown.resolve(), Error);

  PipelineSpec duplicate;
  duplicate.stages = {{"a", StageKind::kReplicated, {}},
                      {"a", StageKind::kSharded, {"a"}}};
  EXPECT_THROW(duplicate.resolve(), Error);

  PipelineSpec unnamed;
  unnamed.stages = {{"", StageKind::kReplicated, {}},
                    {"b", StageKind::kSharded, {""}}};
  EXPECT_THROW(unnamed.resolve(), Error);

  PipelineSpec no_sharded_merge;
  no_sharded_merge.stages = {{"a", StageKind::kReplicated, {}}};
  no_sharded_merge.merge_topk = true;
  EXPECT_THROW(no_sharded_merge.resolve(), Error);

  // A malformed spec is rejected at pipeline construction too.
  EXPECT_THROW(StagePipeline(1, cycle, device::DeviceProfile::fefet45()),
               Error);
}

TEST(PipelineSpec, ImplicitAndExplicitChainsResolveIdentically) {
  const PipelineSpec implicit = ShardRouter::pipeline_spec();
  ASSERT_TRUE(implicit.linear_chain());
  PipelineSpec explicit_spec = implicit;
  explicit_spec.stages[1].deps = {"filter"};
  ASSERT_FALSE(explicit_spec.linear_chain());

  const auto a = implicit.resolve();
  const auto b = explicit_spec.resolve();
  EXPECT_TRUE(a == b);
  ASSERT_EQ(a.order.size(), 2u);
  EXPECT_EQ(a.order[0], 0u);
  EXPECT_EQ(a.order[1], 1u);
  ASSERT_EQ(a.preds[1].size(), 1u);
  EXPECT_EQ(a.preds[1][0], 0u);
  // The rank stage partitions the filter stage's candidate output.
  ASSERT_EQ(a.item_sources[1].size(), 1u);
  EXPECT_EQ(a.item_sources[1][0], 0u);
  EXPECT_EQ(a.output_stage, 1u);
}

TEST(PipelineSpec, CriticalPathFollowsLongestBranch) {
  PipelineSpec diamond;
  diamond.stages = {{"prep", StageKind::kReplicated, {}},
                    {"left", StageKind::kReplicated, {"prep"}},
                    {"right", StageKind::kReplicated, {"prep"}},
                    {"join", StageKind::kSharded, {"left", "right"}}};
  const std::vector<Ns> costs = {Ns{100.0}, Ns{50.0}, Ns{80.0}, Ns{40.0}};
  // prep + max(left, right) + join.
  EXPECT_DOUBLE_EQ(diamond.critical_path(costs).value, 220.0);

  // The same stages as a linear chain sum serially.
  PipelineSpec chain = diamond;
  for (auto& s : chain.stages) s.deps.clear();
  ASSERT_TRUE(chain.linear_chain());
  EXPECT_DOUBLE_EQ(chain.critical_path(costs).value, 270.0);
}

// --- Adversarial spec fuzzing (ISSUE satellite) ----------------------------
// A seeded random DAG generator drives resolve() through every rejection
// class, asserting the imars::Error text NAMES the offending stage (specs
// are assembled from config — the error must be debuggable standalone), and
// through accepted graphs, asserting the topological order is valid,
// reproducible, and exactly the deterministic min-index Kahn order.

std::string stage_name(std::size_t i) { return "s" + std::to_string(i); }

/// Random acyclic spec: stages s0..s{n-1}, forward edges only, at least one
/// edge so the spec is in explicit (named-graph) mode.
PipelineSpec random_dag(util::Xoshiro256& rng, std::size_t n) {
  PipelineSpec spec;
  for (std::size_t i = 0; i < n; ++i)
    spec.stages.push_back({stage_name(i),
                           rng.below(2) == 0 ? StageKind::kReplicated
                                             : StageKind::kSharded,
                           {}});
  bool any_edge = false;
  for (std::size_t j = 1; j < n; ++j)
    for (std::size_t i = 0; i < j; ++i)
      if (rng.below(5) < 2) {
        spec.stages[j].deps.push_back(stage_name(i));
        any_edge = true;
      }
  if (!any_edge) spec.stages[n - 1].deps.push_back(stage_name(0));
  return spec;
}

/// resolve()'s error text, or empty when the spec is accepted.
std::string resolve_error(const PipelineSpec& spec) {
  try {
    (void)spec.resolve();
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

TEST(PipelineSpecFuzz, RejectedGraphsNameTheOffendingStage) {
  util::Xoshiro256 rng(0xDA6F00D);
  for (int iter = 0; iter < 150; ++iter) {
    const std::size_t n = 2 + rng.below(6);
    PipelineSpec spec = random_dag(rng, n);
    std::vector<std::string> expect_tokens;
    switch (iter % 5) {
      case 0: {  // unknown dependency: must name both ends of the edge
        const std::size_t j = rng.below(n);
        spec.stages[j].deps.push_back("ghost");
        expect_tokens = {stage_name(j), "ghost"};
        break;
      }
      case 1: {  // duplicate stage name
        const std::size_t i = rng.below(n - 1);
        const std::size_t j = i + 1 + rng.below(n - 1 - i);
        spec.stages[j].name = spec.stages[i].name;
        expect_tokens = {"duplicate", stage_name(i)};
        break;
      }
      case 2: {  // self-dependency
        const std::size_t j = rng.below(n);
        spec.stages[j].deps.push_back(spec.stages[j].name);
        expect_tokens = {stage_name(j), "itself"};
        break;
      }
      case 3: {  // cycle: a chain plus one back edge i -> j (j > i)
        for (std::size_t s = 0; s < n; ++s) spec.stages[s].deps.clear();
        for (std::size_t s = 1; s < n; ++s)
          spec.stages[s].deps.push_back(stage_name(s - 1));
        const std::size_t i = rng.below(n - 1);
        const std::size_t j = i + 1 + rng.below(n - 1 - i);
        spec.stages[i].deps.push_back(stage_name(j));
        // Kahn gets stuck exactly at the back edge's tail: the error must
        // name a stage ON the cycle, and stage i is the first stuck one.
        expect_tokens = {"cycle", stage_name(i)};
        break;
      }
      case 4: {  // unnamed stage in an explicit graph: named by index
        const std::size_t j = rng.below(n);
        spec.stages[j].name.clear();
        expect_tokens = {"stage #" + std::to_string(j)};
        break;
      }
    }
    const std::string msg = resolve_error(spec);
    ASSERT_FALSE(msg.empty()) << "iter " << iter << ": spec was accepted";
    for (const auto& token : expect_tokens)
      EXPECT_NE(msg.find(token), std::string::npos)
          << "iter " << iter << ": error '" << msg
          << "' does not mention '" << token << "'";
  }
}

TEST(PipelineSpecFuzz, MergeWithoutShardedStageIsRejected) {
  util::Xoshiro256 rng(0xBEEF);
  for (int iter = 0; iter < 20; ++iter) {
    PipelineSpec spec = random_dag(rng, 2 + rng.below(5));
    for (auto& s : spec.stages) s.kind = StageKind::kReplicated;
    spec.merge_topk = true;
    const std::string msg = resolve_error(spec);
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("merge_topk"), std::string::npos) << msg;
  }
}

TEST(PipelineSpecFuzz, AcceptedGraphsTopoOrderDeterministically) {
  util::Xoshiro256 rng(0xCAFE);
  std::size_t accepted = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t n = 1 + rng.below(7);
    PipelineSpec spec = n == 1 ? PipelineSpec{{{stage_name(0),
                                               StageKind::kSharded,
                                               {}}},
                                              false}
                               : random_dag(rng, n);
    // merge_topk only when legal — rejection is covered above.
    bool has_sharded = false;
    for (const auto& s : spec.stages)
      has_sharded |= s.kind == StageKind::kSharded;
    spec.merge_topk = has_sharded && rng.below(2) == 0;

    const PipelineSpec::Graph g = spec.resolve();
    ++accepted;
    // Reproducible: a second resolution is structurally identical.
    EXPECT_TRUE(g == spec.resolve()) << "iter " << iter;

    // The order is a valid topological sort...
    ASSERT_EQ(g.order.size(), spec.stage_count());
    std::vector<std::size_t> position(spec.stage_count());
    for (std::size_t pos = 0; pos < g.order.size(); ++pos)
      position[g.order[pos]] = pos;
    for (std::size_t s = 0; s < spec.stage_count(); ++s)
      for (std::size_t p : g.preds[s])
        EXPECT_LT(position[p], position[s]) << "iter " << iter;

    // ...and exactly the min-index Kahn order: at every step the placed
    // stage is the LOWEST-index ready one (the determinism contract the
    // event-model accounting relies on).
    std::vector<std::size_t> pending(spec.stage_count());
    for (std::size_t s = 0; s < spec.stage_count(); ++s)
      pending[s] = g.preds[s].size();
    std::vector<bool> placed(spec.stage_count(), false);
    for (std::size_t step = 0; step < g.order.size(); ++step) {
      std::size_t lowest = spec.stage_count();
      for (std::size_t s = 0; s < spec.stage_count(); ++s)
        if (!placed[s] && pending[s] == 0) {
          lowest = s;
          break;
        }
      ASSERT_EQ(g.order[step], lowest) << "iter " << iter << " step " << step;
      placed[lowest] = true;
      for (std::size_t succ : g.succs[lowest]) --pending[succ];
    }
  }
  EXPECT_EQ(accepted, 200u);  // the generator never produces invalid graphs
}

// --- Diamond-graph fan-out/join execution ----------------------------------

/// Synthetic four-stage diamond servable with scripted per-stage costs:
///   prep (replicated) -> {left, right} (replicated towers) -> join
///   (sharded over the concatenation of both towers' items).
/// Stage costs are split into an ET part (contends for the shard's shared
/// banks) and a bank-free part, so join/fan-out timing is hand-checkable.
class DiamondServable final : public serve::ServableBackend {
 public:
  struct StageCost {
    double total = 0.0;  ///< stage-unit occupancy (ns)
    double et = 0.0;     ///< ET-bank share of `total` (ns)
  };

  DiamondServable(std::size_t shards, std::vector<StageCost> costs,
                  bool explicit_dag = true)
      : shards_(shards), costs_(std::move(costs)) {
    spec_.stages = {{"prep", StageKind::kReplicated, {}},
                    {"left", StageKind::kReplicated, {}},
                    {"right", StageKind::kReplicated, {}},
                    {"join", StageKind::kSharded, {}}};
    if (explicit_dag) {
      spec_.stages[1].deps = {"prep"};
      spec_.stages[2].deps = {"prep"};
      spec_.stages[3].deps = {"left", "right"};
    }
    spec_.merge_topk = true;
  }

  std::string_view name() const override { return "diamond"; }
  const PipelineSpec& spec() const override { return spec_; }
  std::size_t shards() const override { return shards_; }

  std::vector<std::size_t> run_replicated(
      std::size_t stage, std::size_t /*shard*/, const Request& /*req*/,
      recsys::StageStats* stats) override {
    fill(stage, stats);
    if (stage == 1) return {0, 1};  // left tower's work items
    if (stage == 2) return {2, 3};  // right tower's work items
    return {};
  }

  std::vector<recsys::ScoredItem> run_sharded(
      std::size_t stage, std::size_t /*shard*/, const Request& /*req*/,
      std::span<const std::size_t> slice, std::size_t /*k*/,
      recsys::StageStats* stats) override {
    fill(stage, stats);
    std::vector<recsys::ScoredItem> out;
    for (std::size_t item : slice)
      out.push_back({item, static_cast<float>(item)});
    return out;
  }

  std::vector<serve::RowAccess> accesses(
      std::size_t, const Request&,
      std::span<const std::size_t>) const override {
    return {};
  }

 private:
  void fill(std::size_t stage, recsys::StageStats* stats) const {
    const StageCost& c = costs_.at(stage);
    stats->at(recsys::OpKind::kEtLookup).latency = Ns{c.et};
    stats->at(recsys::OpKind::kDnn).latency = Ns{c.total - c.et};
  }

  std::size_t shards_;
  std::vector<StageCost> costs_;
  PipelineSpec spec_;
};

TEST(StagePipeline, DiamondJoinWaitsOnLastArrivingTower) {
  const auto profile = device::DeviceProfile::fefet45();
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(core::ArchConfig{}, profile));
  // Towers are ET-free (pure crossbar work), so they genuinely overlap;
  // prep and join carry ET traffic.
  DiamondServable servable(
      1, {{100.0, 10.0}, {50.0, 0.0}, {80.0, 0.0}, {40.0, 5.0}});
  StagePipeline pipe(1, servable.spec(), profile);

  Batch batch;
  batch.dispatch = Ns{0.0};
  batch.requests.push_back(make_request(0, 0.0));
  const auto results = pipe.execute(batch, servable, 4, nullptr, timing);
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];

  // prep ends at 100; both towers start there and overlap (the slower one
  // ends at 180); the join runs 180..220 plus the merge-unit cost.
  const double merge =
      r.stage_stats[3].at(recsys::OpKind::kComm).latency.value;
  EXPECT_GT(merge, 0.0);
  ASSERT_EQ(r.stage_latency.size(), 4u);
  EXPECT_DOUBLE_EQ(r.stage_latency[0].value, 100.0);
  EXPECT_DOUBLE_EQ(r.stage_latency[1].value, 50.0);
  EXPECT_DOUBLE_EQ(r.stage_latency[2].value, 80.0);
  EXPECT_DOUBLE_EQ(r.stage_latency[3].value, 40.0 + merge);
  EXPECT_DOUBLE_EQ(r.complete.value, 220.0 + merge);

  // The join consumed both towers' items (concatenated, deduplicated by
  // construction) and merged all four scored results, best first.
  EXPECT_EQ(r.work_items, 4u);
  ASSERT_EQ(r.topk.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_EQ(r.topk[j].item, 3 - j) << "position " << j;

  // The same stages as an implicit linear chain serialize: 270 + merge.
  // (Chain semantics also differ functionally: each replicated stage
  // REDEFINES the item set, so the join only ranks the right tower's
  // items — the DAG's multi-feeder concatenation is a genuine
  // generalization, not just a timing change.)
  DiamondServable chained(
      1, {{100.0, 10.0}, {50.0, 0.0}, {80.0, 0.0}, {40.0, 5.0}},
      /*explicit_dag=*/false);
  StagePipeline chain_pipe(1, chained.spec(), profile);
  const auto chain = chain_pipe.execute(batch, chained, 4, nullptr, timing);
  EXPECT_DOUBLE_EQ(chain[0].complete.value, 270.0 + merge);
  ASSERT_EQ(chain[0].topk.size(), 2u);
  EXPECT_EQ(chain[0].topk[0].item, 3u);
  EXPECT_EQ(chain[0].topk[1].item, 2u);
}

TEST(StagePipeline, ParallelTowersWithEtTrafficSerializeOnSharedBanks) {
  const auto profile = device::DeviceProfile::fefet45();
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(core::ArchConfig{}, profile));
  // Both towers read the ET banks: the fabric can overlap their compute
  // units but the shared banks serialize the lookups (left claims them
  // 100..105, so right cannot start before 105).
  DiamondServable servable(
      1, {{100.0, 10.0}, {50.0, 5.0}, {80.0, 5.0}, {40.0, 5.0}});
  StagePipeline pipe(1, servable.spec(), profile);

  Batch batch;
  batch.dispatch = Ns{0.0};
  batch.requests.push_back(make_request(0, 0.0));
  const auto results = pipe.execute(batch, servable, 4, nullptr, timing);
  const auto& r = results[0];
  const double merge =
      r.stage_stats[3].at(recsys::OpKind::kComm).latency.value;
  // left: 100..150; right: 105..185 (bank wait); join: 185..225.
  EXPECT_DOUBLE_EQ(r.stage_latency[1].value, 50.0);
  EXPECT_DOUBLE_EQ(r.stage_latency[2].value, 85.0);
  EXPECT_DOUBLE_EQ(r.complete.value, 225.0 + merge);
}

// --- Tower-parallel CTR graphs ---------------------------------------------

TEST(CtrServable, TowerGraphsMatchFusedScores) {
  CtrFixture fx;
  const auto profile = device::DeviceProfile::fefet45();
  const serve::CacheTiming timing = serve::CacheTiming::from_model(
      core::PerfModel(core::ArchConfig{}, profile));
  const std::vector<device::DeviceProfile> profiles(2, profile);
  std::vector<data::CriteoSample> samples;
  for (std::size_t i = 0; i < fx.ds->size(); ++i)
    samples.push_back(fx.ds->sample(i));

  Batch batch;
  batch.dispatch = Ns{0.0};
  const std::size_t n = 12;
  for (std::size_t i = 0; i < n; ++i)
    batch.requests.push_back(make_request(i, 0.0, i % samples.size()));

  auto run_graph = [&](CtrGraph graph) {
    CtrServable servable(fx.factory, profiles, graph);
    servable.bind_samples(samples);
    StagePipeline pipe(2, CtrServable::pipeline_spec(graph), profile);
    return pipe.execute(batch, servable, 1, nullptr, timing);
  };
  const auto fused = run_graph(CtrGraph::kFused);
  const auto chain = run_graph(CtrGraph::kTowerChain);
  const auto dag = run_graph(CtrGraph::kTowerDag);

  const auto serial = fx.factory(core::ShardSlot{0, profile});
  for (std::size_t i = 0; i < n; ++i) {
    const auto& s = samples[batch.requests[i].user];
    const float want = serial->score(s.dense, s.sparse, nullptr);
    for (const auto* r : {&fused[i], &chain[i], &dag[i]}) {
      ASSERT_EQ(r->topk.size(), 1u) << "query " << i;
      EXPECT_EQ(r->topk[0].item, batch.requests[i].user);
      EXPECT_FLOAT_EQ(r->topk[0].score, want) << "query " << i;
    }
    // The tower DAG overlaps the gather and dense towers, so it strictly
    // beats the serialized chain on every query's completion.
    EXPECT_LT(dag[i].complete.value, chain[i].complete.value)
        << "query " << i;

    // Stage attribution: gather carries the ET traffic, the dense tower is
    // pure crossbar work, and the three tower stages sum to the fused
    // stage's cost.
    const auto& gather = dag[i].stage_stats[0];
    const auto& dense = dag[i].stage_stats[1];
    const auto& interact = dag[i].stage_stats[2];
    EXPECT_GT(gather.at(recsys::OpKind::kEtLookup).latency.value, 0.0);
    EXPECT_DOUBLE_EQ(gather.at(recsys::OpKind::kDnn).latency.value, 0.0);
    EXPECT_GT(dense.at(recsys::OpKind::kDnn).latency.value, 0.0);
    EXPECT_DOUBLE_EQ(dense.at(recsys::OpKind::kEtLookup).latency.value, 0.0);
    EXPECT_GT(interact.at(recsys::OpKind::kDnn).latency.value, 0.0);
    const double tower_total = gather.total().latency.value +
                               dense.total().latency.value +
                               interact.total().latency.value;
    EXPECT_DOUBLE_EQ(tower_total, fused[i].stage_stats[0].total().latency.value)
        << "query " << i;
  }
}

TEST(CtrServable, TowerGraphServesThroughRuntimeWithNamedUtilization) {
  CtrFixture fx;
  const auto profile = device::DeviceProfile::fefet45();
  std::vector<data::CriteoSample> samples;
  for (std::size_t i = 0; i < fx.ds->size(); ++i)
    samples.push_back(fx.ds->sample(i));
  const std::vector<device::DeviceProfile> profiles(2, profile);
  auto servable = std::make_unique<CtrServable>(fx.factory, profiles,
                                                CtrGraph::kTowerDag);
  servable->bind_samples(samples);

  ServingConfig cfg;
  cfg.k = 1;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait = Ns{500000.0};
  cfg.cache.capacity_rows = 2048;
  ServingRuntime rt(std::move(servable), cfg, core::ArchConfig{}, profile);

  LoadGenConfig lg;
  lg.clients = 8;
  lg.total_queries = 24;
  lg.num_users = samples.size();
  lg.user_zipf_s = 1.0;
  lg.seed = 67;
  LoadGenerator gen(lg);
  const auto report = rt.run(gen);
  ASSERT_EQ(report.size(), 24u);
  EXPECT_GT(report.cache.hit_rate(), 0.0);

  // Per-stage utilization is keyed by graph node.
  ASSERT_EQ(report.stage_names.size(), 1u);
  EXPECT_EQ(report.stage_names[0],
            (std::vector<std::string>{"gather", "dense", "interact"}));
  double gather_busy = 0.0, interact_busy = 0.0;
  for (std::size_t s = 0; s < 2; ++s) {
    gather_busy += report.stage_utilization(s, "gather");
    interact_busy += report.stage_utilization(s, "interact");
    EXPECT_GE(report.stage_utilization(s, "dense"), 0.0);
    // The interact node is the last stage, so the legacy helper agrees.
    EXPECT_DOUBLE_EQ(report.stage_utilization(s, "interact"),
                     report.rank_utilization(s));
  }
  EXPECT_GT(gather_busy, 0.0);
  EXPECT_GT(interact_busy, 0.0);
  EXPECT_THROW(report.stage_utilization(0, "nope"), Error);
}

// --- Graph-aware QoS service estimates -------------------------------------

TEST(ServingRuntime, DefaultsServiceEstimateFromGraphCriticalPath) {
  FilterRankFixture fx;

  auto run_with = [&](Ns service_estimate) {
    ServingConfig cfg;
    cfg.shards = 2;
    cfg.k = 5;
    serve::QosClassConfig interactive;
    interactive.name = "interactive";
    interactive.max_batch = 2;
    interactive.max_wait = Ns{300000.0};
    interactive.deadline = Ns{150000.0};
    interactive.service_estimate = service_estimate;  // 0 = default it
    serve::QosClassConfig bulk;
    bulk.name = "bulk";
    bulk.max_batch = 4;
    bulk.max_wait = Ns{300000.0};
    bulk.weight = 3.0;
    cfg.qos.classes = {interactive, bulk};
    ServingRuntime rt(fx.factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    LoadGenConfig lg;
    lg.clients = 6;
    lg.total_queries = 30;
    lg.num_users = fx.users.size();
    lg.class_mix = {0.4, 0.6};
    lg.arrivals = ArrivalProcess::kOpenPoisson;
    lg.rate_qps = 2.0e5;
    lg.seed = 205;
    LoadGenerator gen(lg);
    return rt.run(gen, fx.users);
  };

  // The defaulted estimate equals the hand-computed graph service
  // estimate, so both runs make identical close decisions.
  ShardRouter probe(fx.factory, 2);
  probe.bind_users(fx.users);
  const auto costs = probe.stage_cost_estimate(5);  // the runtime's cfg.k
  ASSERT_EQ(costs.size(), 2u);  // {filter, rank}
  StagePipeline pipe(2, ShardRouter::pipeline_spec(),
                     device::DeviceProfile::fefet45());
  const Ns expected = pipe.service_estimate(0, costs, 5, 2);
  EXPECT_GT(expected.value, 0.0);  // merge cost at minimum (CPU oracle)

  serve_test::expect_reports_identical(run_with(Ns{0.0}), run_with(expected));
  // An explicit estimate is never overridden: a different constant changes
  // the preemptive close (sanity that the default actually engages).
  // (Close decisions only shift if the slack changes the trigger order, so
  // just assert determinism of the defaulted run.)
  serve_test::expect_reports_identical(run_with(Ns{0.0}), run_with(Ns{0.0}));
}

TEST(StagePipeline, ServiceEstimateComposesCriticalPathAndBatch) {
  const auto profile = device::DeviceProfile::fefet45();
  DiamondServable servable(
      1, {{100.0, 10.0}, {50.0, 0.0}, {80.0, 0.0}, {40.0, 5.0}});
  StagePipeline pipe(1, servable.spec(), profile);
  const std::vector<Ns> costs = {Ns{100.0}, Ns{50.0}, Ns{80.0}, Ns{40.0}};
  const Ns one = pipe.service_estimate(0, costs, 4, 1);
  const Ns four = pipe.service_estimate(0, costs, 4, 4);
  // Batch 1: the 220 ns critical path plus the merge; each further query
  // adds one bottleneck-stage (100 ns) occupancy.
  EXPECT_GT(one.value, 220.0);
  EXPECT_DOUBLE_EQ(four.value - one.value, 3.0 * 100.0);
}

// --- DAG<->linear bit-parity grid ------------------------------------------

TEST(ServingRuntime, ExplicitGraphMatchesImplicitChainAcrossGrid) {
  FilterRankFixture fx;

  auto run_once = [&](bool explicit_graph, std::size_t classes, bool open,
                      bool overlap) {
    auto router = std::make_unique<ShardRouter>(fx.factory, 3);
    if (explicit_graph) {
      PipelineSpec spec = ShardRouter::pipeline_spec();
      spec.stages[1].deps = {"filter"};
      router->override_spec(spec);
    }
    ServingConfig cfg;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{300000.0};
    cfg.cache.capacity_rows = 1024;
    cfg.overlap = overlap;
    cfg.max_inflight = 3;
    if (classes > 1) {
      serve::QosClassConfig interactive;
      interactive.name = "interactive";
      interactive.max_batch = 2;
      interactive.max_wait = Ns{300000.0};
      interactive.deadline = Ns{150000.0};
      interactive.service_estimate = Ns{20000.0};
      interactive.weight = 2.0;
      serve::QosClassConfig bulk;
      bulk.name = "bulk";
      bulk.max_batch = 4;
      bulk.max_wait = Ns{300000.0};
      bulk.weight = 4.0;
      serve::QosClassConfig scavenger;
      scavenger.name = "scavenger";
      scavenger.max_batch = 4;
      scavenger.max_wait = Ns{300000.0};
      scavenger.weight = 0.0;
      cfg.qos.classes = {interactive, bulk, scavenger};
    }
    ServingRuntime rt(std::move(router), cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = 40;
    lg.num_users = fx.users.size();
    lg.seed = 171;
    if (classes > 1) lg.class_mix = {0.2, 0.7, 0.1};
    if (open) {
      lg.arrivals = ArrivalProcess::kOpenPoisson;
      lg.rate_qps = 2.0e5;
    }
    LoadGenerator gen(lg);
    return rt.run(gen, fx.users);
  };

  for (const std::size_t classes : {std::size_t{1}, std::size_t{3}}) {
    for (const bool open : {false, true}) {
      for (const bool overlap : {false, true}) {
        const auto implicit = run_once(false, classes, open, overlap);
        const auto explicit_graph = run_once(true, classes, open, overlap);
        serve_test::expect_reports_identical(implicit, explicit_graph);
        ASSERT_EQ(implicit.size(), 40u)
            << "classes=" << classes << " open=" << open
            << " overlap=" << overlap;
      }
    }
  }
}

TEST(ShardRouter, OverrideSpecRejectsDifferentGraphs) {
  FilterRankFixture fx;
  ShardRouter router(fx.factory, 2);
  PipelineSpec reversed;
  reversed.stages = {{"rank", StageKind::kSharded, {}},
                     {"filter", StageKind::kReplicated, {"rank"}}};
  reversed.merge_topk = true;
  EXPECT_THROW(router.override_spec(reversed), Error);
}

TEST(LoadGenerator, ModesRejectWrongEntryPoint) {
  LoadGenConfig closed;
  closed.num_users = 4;
  LoadGenerator cgen(closed);
  EXPECT_THROW(cgen.next_arrival(), std::runtime_error);

  LoadGenConfig open = closed;
  open.arrivals = ArrivalProcess::kOpenPoisson;
  open.rate_qps = 1e5;
  LoadGenerator ogen(open);
  EXPECT_THROW(ogen.next(0, Ns{0.0}), std::runtime_error);
}

}  // namespace
}  // namespace imars
