// Unit + property tests for the tensor module.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/qtensor.hpp"
#include "tensor/tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using tensor::Matrix;
using tensor::Vector;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return Matrix::randn(r, c, 1.0f, rng);
}

TEST(Matrix, ConstructZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (float x : m.data()) EXPECT_EQ(x, 0.0f);
}

TEST(Matrix, DataConstructorChecksSize) {
  EXPECT_THROW(Matrix(2, 2, {1.0f, 2.0f}), Error);
}

TEST(Matrix, AtOutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), Error);
  EXPECT_THROW(m.at(0, 2), Error);
}

TEST(Matrix, TransposedTwiceIsIdentity) {
  const Matrix m = random_matrix(5, 7, 1);
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, MatmulAgainstManual) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = tensor::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matrix, MatmulDimMismatchThrows) {
  EXPECT_THROW(tensor::matmul(Matrix(2, 3), Matrix(2, 3)), Error);
}

TEST(Matrix, MatmulAssociativityProperty) {
  const Matrix a = random_matrix(4, 5, 2);
  const Matrix b = random_matrix(5, 6, 3);
  const Matrix c = random_matrix(6, 3, 4);
  const Matrix left = tensor::matmul(tensor::matmul(a, b), c);
  const Matrix right = tensor::matmul(a, tensor::matmul(b, c));
  for (std::size_t i = 0; i < left.data().size(); ++i)
    EXPECT_NEAR(left.data()[i], right.data()[i], 1e-3f);
}

TEST(Matrix, GemvMatchesMatmul) {
  const Matrix m = random_matrix(6, 4, 5);
  util::Xoshiro256 rng(6);
  Vector v(4);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  const Vector out = tensor::gemv(m, v);
  const Matrix vm(4, 1, {v[0], v[1], v[2], v[3]});
  const Matrix ref = tensor::matmul(m, vm);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], ref.at(i, 0), 1e-4f);
}

TEST(Matrix, GevmIsTransposedGemv) {
  const Matrix m = random_matrix(5, 7, 8);
  util::Xoshiro256 rng(9);
  Vector v(5);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  const Vector a = tensor::gevm(v, m);
  const Vector b = tensor::gemv(m.transposed(), v);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-4f);
}

TEST(Elementwise, AddSubHadamard) {
  const Vector a = {1, 2, 3};
  const Vector b = {4, 5, 6};
  EXPECT_EQ(tensor::add(a, b), (Vector{5, 7, 9}));
  EXPECT_EQ(tensor::sub(b, a), (Vector{3, 3, 3}));
  EXPECT_EQ(tensor::hadamard(a, b), (Vector{4, 10, 18}));
}

TEST(Elementwise, SizeMismatchThrows) {
  const Vector a = {1, 2};
  const Vector b = {1, 2, 3};
  EXPECT_THROW(tensor::add(a, b), Error);
  EXPECT_THROW(tensor::dot(a, b), Error);
}

TEST(Elementwise, DotNormCosine) {
  const Vector a = {3, 4};
  EXPECT_FLOAT_EQ(tensor::norm(a), 5.0f);
  const Vector b = {4, -3};  // orthogonal
  EXPECT_FLOAT_EQ(tensor::dot(a, b), 0.0f);
  EXPECT_FLOAT_EQ(tensor::cosine(a, b), 0.0f);
  EXPECT_NEAR(tensor::cosine(a, a), 1.0f, 1e-6f);
}

TEST(Elementwise, CosineZeroVectorIsZero) {
  const Vector z = {0, 0};
  const Vector a = {1, 1};
  EXPECT_EQ(tensor::cosine(z, a), 0.0f);
}

TEST(Activations, ReluClampsNegatives) {
  const Vector x = {-1.0f, 0.0f, 2.5f};
  EXPECT_EQ(tensor::relu(x), (Vector{0.0f, 0.0f, 2.5f}));
}

TEST(Activations, SigmoidRangeAndMidpoint) {
  const Vector x = {-100.0f, 0.0f, 100.0f};
  const Vector s = tensor::sigmoid(x);
  EXPECT_NEAR(s[0], 0.0f, 1e-6f);
  EXPECT_FLOAT_EQ(s[1], 0.5f);
  EXPECT_NEAR(s[2], 1.0f, 1e-6f);
}

TEST(Activations, SoftmaxSumsToOneAndIsStable) {
  const Vector x = {1000.0f, 1001.0f, 999.0f};  // would overflow naive exp
  const Vector s = tensor::softmax(x);
  float sum = 0.0f;
  for (float v : s) {
    EXPECT_TRUE(std::isfinite(v));
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_GT(s[1], s[0]);
  EXPECT_GT(s[0], s[2]);
}

TEST(Concat, PreservesOrder) {
  const std::vector<Vector> parts = {{1, 2}, {3}, {4, 5}};
  EXPECT_EQ(tensor::concat(parts), (Vector{1, 2, 3, 4, 5}));
}

// ---------- QMatrix ---------------------------------------------------------

TEST(QMatrix, QuantizeDequantizeBounded) {
  const Matrix m = random_matrix(8, 8, 11);
  const auto q = tensor::QMatrix::quantize(m);
  const Matrix back = q.dequantize();
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      EXPECT_NEAR(back.at(r, c), m.at(r, c), q.params().scale * 0.5f + 1e-6f);
}

TEST(QMatrix, RowViewMatchesAt) {
  const Matrix m = random_matrix(4, 6, 12);
  const auto q = tensor::QMatrix::quantize(m);
  for (std::size_t r = 0; r < q.rows(); ++r) {
    const auto row = q.row(r);
    for (std::size_t c = 0; c < q.cols(); ++c) EXPECT_EQ(row[c], q.at(r, c));
  }
}

TEST(QMatrix, GemvI8MatchesFloatWithinQuantError) {
  const Matrix m = random_matrix(16, 32, 13);
  util::Xoshiro256 rng(14);
  Vector v(32);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));

  const auto wq = tensor::QMatrix::quantize(m);
  const auto vp = util::choose_symmetric(v);
  const auto vq = util::quantize(v, vp);

  const auto acc = tensor::gemv_i8(wq, vq);
  const Vector ref = tensor::gemv(m, v);
  const float scale = wq.params().scale * vp.scale;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    // Error bound: each product has quant error ~scale/2 per operand.
    EXPECT_NEAR(scale * static_cast<float>(acc[i]), ref[i], 0.15f);
  }
}

TEST(QMatrix, GemvI8DimMismatchThrows) {
  const auto q = tensor::QMatrix::quantize(Matrix(2, 3));
  const std::vector<std::int8_t> v(4, 1);
  EXPECT_THROW(tensor::gemv_i8(q, v), Error);
}

}  // namespace
}  // namespace imars
