// Tests for the training driver and the query-stream engine.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/cpu_backend.hpp"
#include "core/backend.hpp"
#include "core/query_engine.hpp"
#include "data/movielens.hpp"
#include "recsys/trainer.hpp"
#include "recsys/youtube_dnn.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using data::MovieLensConfig;
using data::MovieLensSynth;
using recsys::TrainOptions;
using recsys::YoutubeDnn;
using recsys::YoutubeDnnConfig;

struct Fixture {
  Fixture() {
    MovieLensConfig dcfg;
    dcfg.num_users = 100;
    dcfg.num_items = 90;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 71;
    ds = std::make_unique<MovieLensSynth>(dcfg);

    YoutubeDnnConfig mcfg;
    mcfg.emb_dim = 16;
    mcfg.filter_hidden = {32, 16};
    mcfg.rank_hidden = {16};
    mcfg.negatives = 4;
    mcfg.seed = 72;
    model = std::make_unique<YoutubeDnn>(ds->schema(), mcfg);
  }
  std::unique_ptr<MovieLensSynth> ds;
  std::unique_ptr<YoutubeDnn> model;
};

// ---------- trainer -----------------------------------------------------------

TEST(Trainer, RunsRequestedEpochsAndRecordsHistory) {
  Fixture f;
  TrainOptions opts;
  opts.max_epochs = 3;
  opts.seed = 73;
  const auto result = recsys::train_filter(*f.model, *f.ds, opts);
  ASSERT_EQ(result.history.size(), 3u);
  for (std::size_t e = 0; e < 3; ++e) EXPECT_EQ(result.history[e].epoch, e);
  EXPECT_FALSE(result.early_stopped);
  // No eval schedule: metrics stay NaN.
  for (const auto& h : result.history) EXPECT_TRUE(std::isnan(h.metric));
}

TEST(Trainer, EvalScheduleComputesHitRate) {
  Fixture f;
  TrainOptions opts;
  opts.max_epochs = 4;
  opts.eval_every = 2;
  opts.seed = 74;
  const auto result = recsys::train_filter(*f.model, *f.ds, opts);
  // Epochs 2 and 4 evaluated.
  EXPECT_TRUE(std::isnan(result.history[0].metric));
  EXPECT_FALSE(std::isnan(result.history[1].metric));
  EXPECT_TRUE(std::isnan(result.history[2].metric));
  EXPECT_FALSE(std::isnan(result.history[3].metric));
  EXPECT_GE(result.best_metric, 0.0);
  EXPECT_LE(result.best_metric, 1.0);
}

TEST(Trainer, EpochCallbackFires) {
  Fixture f;
  TrainOptions opts;
  opts.max_epochs = 2;
  opts.seed = 75;
  std::size_t calls = 0;
  opts.on_epoch = [&](const recsys::EpochStats&) { ++calls; };
  (void)recsys::train_rank(*f.model, *f.ds, opts);
  EXPECT_EQ(calls, 2u);
}

TEST(Trainer, EarlyStoppingHonorsPatience) {
  Fixture f;
  TrainOptions opts;
  opts.max_epochs = 50;  // would take a while without early stop
  opts.eval_every = 1;
  opts.patience = 2;
  opts.seed = 76;
  const auto result = recsys::train_filter(*f.model, *f.ds, opts);
  // With eval every epoch and patience 2, the run must terminate as soon as
  // two consecutive evaluations fail to improve.
  EXPECT_LT(result.history.size(), 50u);
  EXPECT_TRUE(result.early_stopped);
  EXPECT_LE(result.best_epoch + 3, result.history.size() + 1);
}

TEST(Trainer, DlrmAucImprovesOverTraining) {
  data::CriteoConfig dcfg;
  dcfg.num_samples = 1500;
  dcfg.seed = 77;
  const data::CriteoSynth ds(dcfg);
  recsys::DlrmConfig mcfg;
  mcfg.emb_dim = 8;
  mcfg.bottom_hidden = {16, 8};
  mcfg.top_hidden = {16};
  mcfg.seed = 78;
  recsys::Dlrm model(ds.schema(), mcfg);

  TrainOptions opts;
  opts.max_epochs = 3;
  opts.eval_every = 1;
  opts.seed = 79;
  const auto result = recsys::train_dlrm(model, ds, opts);
  EXPECT_GT(result.best_metric, 0.55);  // AUC above chance
  // Last evaluation should not be far below the best (stable training).
  EXPECT_GT(result.history.back().metric, result.best_metric - 0.1);
}

// ---------- query engine --------------------------------------------------------

TEST(QueryEngine, StreamOverCpuBackend) {
  Fixture f;
  util::Xoshiro256 rng(80);
  for (int e = 0; e < 2; ++e) f.model->train_filter_epoch(*f.ds, rng);

  baseline::CpuBackendConfig cfg;
  cfg.candidates = 10;
  baseline::CpuBackend backend(*f.model, cfg);

  std::vector<recsys::UserContext> users;
  for (std::size_t u = 0; u < 25; ++u)
    users.push_back(f.model->make_context(*f.ds, u));

  const auto report = core::run_stream(backend, users, 5);
  EXPECT_EQ(report.size(), 25u);
  for (const auto& q : report.queries) EXPECT_EQ(q.candidates, 10u);
  // CPU oracle carries no cost model: all latencies zero, percentiles safe.
  EXPECT_DOUBLE_EQ(report.mean_latency_ns(), 0.0);
  EXPECT_DOUBLE_EQ(report.p99_latency_ns(), 0.0);
}

TEST(QueryEngine, StreamOverImarsBackendHasOrderedPercentiles) {
  MovieLensConfig dcfg;
  dcfg.num_users = 60;
  dcfg.num_items = 80;
  dcfg.seed = 81;
  const MovieLensSynth ds(dcfg);
  YoutubeDnnConfig mcfg;  // 32-d default for the hardware constraint
  mcfg.seed = 82;
  YoutubeDnn model(ds.schema(), mcfg);

  std::vector<recsys::UserContext> calib;
  for (std::size_t u = 0; u < 6; ++u) calib.push_back(model.make_context(ds, u));
  core::ImarsBackendConfig icfg;
  icfg.nns_radius = 110;
  core::ImarsBackend backend(model, core::ArchConfig{},
                             device::DeviceProfile::fefet45(), icfg, calib);

  std::vector<recsys::UserContext> users;
  for (std::size_t u = 0; u < 30; ++u) users.push_back(model.make_context(ds, u));
  const auto report = core::run_stream(backend, users, 5);

  EXPECT_GT(report.mean_latency_ns(), 0.0);
  EXPECT_LE(report.p50_latency_ns(), report.p95_latency_ns());
  EXPECT_LE(report.p95_latency_ns(), report.p99_latency_ns());
  EXPECT_GT(report.mean_energy_pj(), 0.0);

  // Pipelining never hurts and never beats the bottleneck stage.
  EXPECT_GE(report.qps_pipelined(), report.qps_serial());
}

TEST(QueryEngine, StageStatsAccumulateAcrossStream) {
  Fixture f;
  baseline::CpuBackendConfig cfg;
  baseline::CpuBackend backend(*f.model, cfg);
  std::vector<recsys::UserContext> users;
  for (std::size_t u = 0; u < 5; ++u)
    users.push_back(f.model->make_context(*f.ds, u));
  const auto report = core::run_stream(backend, users, 3);
  // Functional-only backend: stats exist but are all zero.
  EXPECT_DOUBLE_EQ(report.filter_stats.total().latency.value, 0.0);
  EXPECT_EQ(report.queries.size(), 5u);
}

}  // namespace
}  // namespace imars
