// Unit + property tests for the util module: RNG, BitVec, quantization,
// statistics, table rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/bitvec.hpp"
#include "util/error.hpp"
#include "util/flat_map.hpp"
#include "util/quant.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace imars {
namespace {

using util::BitVec;

// ---------- RNG -----------------------------------------------------------

TEST(Rng, SplitMixIsDeterministic) {
  util::SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixDiffersAcrossSeeds) {
  util::SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, Hash64IsStable) {
  EXPECT_EQ(util::hash64(7, 9), util::hash64(7, 9));
  EXPECT_NE(util::hash64(7, 9), util::hash64(7, 10));
  EXPECT_NE(util::hash64(8, 9), util::hash64(7, 9));
}

TEST(Rng, XoshiroUniformRange) {
  util::Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, XoshiroUniformMeanApproxHalf) {
  util::Xoshiro256 rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, XoshiroBelowIsInRange) {
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, XoshiroBelowCoversAllValues) {
  util::Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NormalMomentsApproxStandard) {
  util::Xoshiro256 rng(11);
  util::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  util::Xoshiro256 rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// ---------- BitVec --------------------------------------------------------

TEST(BitVec, StartsAllZero) {
  BitVec v(300);
  EXPECT_EQ(v.size(), 300u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetGetFlipRoundTrip) {
  BitVec v(130);
  v.set(0, true);
  v.set(64, true);   // word boundary
  v.set(129, true);  // last bit
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_EQ(v.popcount(), 3u);
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVec, FromStringMatchesToString) {
  const std::string s = "1010011100101";
  const BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.popcount(), 7u);
}

TEST(BitVec, FromStringRejectsNonBinary) {
  EXPECT_THROW(BitVec::from_string("10x1"), Error);
}

TEST(BitVec, FillSetsEverythingAndClearsTail) {
  BitVec v(70);
  v.fill(true);
  EXPECT_EQ(v.popcount(), 70u);
  // Tail bits beyond size must not leak into popcount via operator~.
  const BitVec w = ~v;
  EXPECT_EQ(w.popcount(), 0u);
}

TEST(BitVec, HammingAgainstManual) {
  const BitVec a = BitVec::from_string("110010");
  const BitVec b = BitVec::from_string("011011");
  EXPECT_EQ(a.hamming(b), 3u);
  EXPECT_EQ(a.hamming(a), 0u);
}

TEST(BitVec, HammingSizeMismatchThrows) {
  EXPECT_THROW(BitVec(8).hamming(BitVec(9)), Error);
}

TEST(BitVec, XorEqualsHammingPopcount) {
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    BitVec a(257), b(257);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a.set(i, rng.bernoulli(0.5));
      b.set(i, rng.bernoulli(0.5));
    }
    EXPECT_EQ((a ^ b).popcount(), a.hamming(b));
  }
}

TEST(BitVec, AndOrDeMorgan) {
  util::Xoshiro256 rng(4);
  BitVec a(100), b(100);
  for (std::size_t i = 0; i < 100; ++i) {
    a.set(i, rng.bernoulli(0.5));
    b.set(i, rng.bernoulli(0.5));
  }
  EXPECT_EQ(~(a & b), (~a | ~b));
  EXPECT_EQ(~(a | b), (~a & ~b));
}

TEST(BitVec, ByteRoundTrip) {
  BitVec v(256);
  for (int x : {0, 1, 127, 128, 200, 255}) {
    v.set_byte(8, static_cast<std::uint8_t>(x));
    EXPECT_EQ(v.byte_at(8), static_cast<std::uint8_t>(x));
  }
}

TEST(BitVec, SliceAndCopyFrom) {
  const BitVec v = BitVec::from_string("11001010");
  const BitVec s = v.slice(2, 4);
  EXPECT_EQ(s.to_string(), "0010");
  BitVec d(10);
  d.copy_from(v, 0, 8, 1);
  EXPECT_EQ(d.to_string(), "0110010100");
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(16);
  EXPECT_THROW(v.get(16), Error);
  EXPECT_THROW(v.set(100, true), Error);
  EXPECT_THROW(v.slice(10, 8), Error);
  EXPECT_THROW(v.byte_at(9), Error);
}

TEST(BitVec, FromWordsUsesLowBits) {
  const std::uint64_t words[2] = {0xFFULL, 0x1ULL};
  const BitVec v = BitVec::from_words(words, 66);
  EXPECT_EQ(v.popcount(), 9u);
  EXPECT_TRUE(v.get(64));
  EXPECT_FALSE(v.get(65));
}

// ---------- Quantization ---------------------------------------------------

TEST(Quant, ChooseSymmetricMapsMaxTo127) {
  const float xs[] = {-2.0f, 0.5f, 1.0f};
  const auto p = util::choose_symmetric(xs);
  EXPECT_FLOAT_EQ(p.scale, 2.0f / 127.0f);
  EXPECT_EQ(p.quantize(-2.0f), -127);
  EXPECT_EQ(p.quantize(2.0f), 127);
}

TEST(Quant, ZeroInputGetsUnitScale) {
  const std::vector<float> xs(4, 0.0f);
  const auto p = util::choose_symmetric(xs);
  EXPECT_FLOAT_EQ(p.scale, 1.0f);
  EXPECT_EQ(p.quantize(0.0f), 0);
}

TEST(Quant, RoundTripErrorBounded) {
  util::Xoshiro256 rng(21);
  std::vector<float> xs(256);
  for (auto& x : xs) x = static_cast<float>(rng.uniform(-3.0, 3.0));
  const auto p = util::choose_symmetric(xs);
  const auto q = util::quantize(xs, p);
  const auto back = util::dequantize(q, p);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(back[i], xs[i], p.scale * 0.5f + 1e-6f);
  }
}

TEST(Quant, SaturatingAddClamps) {
  EXPECT_EQ(util::sat_add_i8(100, 100), 127);
  EXPECT_EQ(util::sat_add_i8(-100, -100), -127);
  EXPECT_EQ(util::sat_add_i8(50, -20), 30);
}

TEST(Quant, SatCastSymmetricRange) {
  EXPECT_EQ(util::sat_cast_i8(1000), 127);
  EXPECT_EQ(util::sat_cast_i8(-1000), -127);
  EXPECT_EQ(util::sat_cast_i8(-127), -127);
  EXPECT_EQ(util::sat_cast_i8(5), 5);
}

// ---------- Stats -----------------------------------------------------------

TEST(Stats, RunningStatsMatchesClosedForm) {
  util::RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(util::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 50), 2.5);
}

TEST(Stats, PercentileRejectsBadInput) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(util::percentile({}, 50), Error);
  EXPECT_THROW(util::percentile(xs, 101), Error);
}

// Tiny-sample audit: the interpolated rank p/100 * (n-1) stays inside
// [0, n-1] for every p in [0, 100], so high percentiles on the small
// streams the CI quick benches produce can never index past the sorted
// vector nor return 0 for a non-zero sample.
TEST(Stats, PercentileTinySamplesNeverEscapeTheData) {
  const std::vector<double> one = {7.5};
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(util::percentile(one, p), 7.5) << "p=" << p;

  const std::vector<double> two = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(util::percentile(two, 99), 19.9);
  EXPECT_DOUBLE_EQ(util::percentile(two, 100), 20.0);

  // For any small n, every percentile lies within [min, max] and p99 sits
  // in the top inter-sample gap (never truncated to a lower sample).
  for (std::size_t n = 1; n <= 99; ++n) {
    std::vector<double> xs;
    for (std::size_t i = 0; i < n; ++i)
      xs.push_back(static_cast<double>(i + 1));
    for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
      const double v = util::percentile(xs, p);
      EXPECT_GE(v, 1.0) << "n=" << n << " p=" << p;
      EXPECT_LE(v, static_cast<double>(n)) << "n=" << n << " p=" << p;
    }
    if (n >= 2) {
      EXPECT_GT(util::percentile(xs, 99), static_cast<double>(n - 1));
      EXPECT_GE(util::percentile(xs, 99), util::percentile(xs, 95));
    }
  }
}

// Randomized equivalence of the two percentile implementations: the
// nth_element-based percentile_select must return bit-identical values to
// the sort-based percentile on arbitrary streams. Heavy ties and
// duplicates are the adversarial case — a selection that mishandles equal
// elements around the interpolation rank diverges exactly there.
TEST(Stats, PercentileSelectMatchesSortOnHeavyTieStreams) {
  util::Xoshiro256 rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.below(257);
    // Draw from a tiny value alphabet so long runs of ties straddle every
    // interpolation rank; a few trials use a wider alphabet as control.
    const std::uint64_t alphabet = (trial % 4 == 0) ? 1000 : 1 + rng.below(5);
    std::vector<double> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      xs.push_back(static_cast<double>(rng.below(alphabet)) * 0.25);
    for (double p : {0.0, 100.0, 50.0, 95.0, 99.0}) {
      const double want = util::percentile(xs, p);
      std::vector<double> scratch = xs;  // percentile_select reorders
      const double got = util::percentile_select(scratch, p);
      EXPECT_DOUBLE_EQ(got, want)
          << "trial=" << trial << " n=" << n << " alphabet=" << alphabet
          << " p=" << p;
    }
  }
}

// ---------- FlatMap64 -------------------------------------------------------

TEST(FlatMap64, PointOperationsMatchReferenceMapUnderChurn) {
  util::FlatMap64 map;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.below(512);  // force collisions + reuse
    switch (rng.below(4)) {
      case 0:
        ++map[key];
        ++ref[key];
        break;
      case 1:
        map.set(key, key * 3);
        ref[key] = key * 3;
        break;
      case 2:
        EXPECT_EQ(map.erase(key), ref.erase(key) > 0);
        break;
      default: {
        const std::uint64_t* slot = map.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(slot != nullptr, it != ref.end());
        if (slot != nullptr) EXPECT_EQ(*slot, it->second);
        break;
      }
    }
    EXPECT_EQ(map.size(), ref.size());
  }
}

// Regression for the pointer-invalidation hazard: pointers returned by
// find()/operator[] are silently invalidated by any insert that rehashes
// and by any successful erase (backward-shift deletion moves survivors).
// generation() must tick on exactly those operations so callers holding a
// pointer across them (hot_cache.cpp's access()) can assert validity.
TEST(FlatMap64, GenerationTicksOnRehashAndEraseOnly) {
  util::FlatMap64 map;
  map.set(1, 10);  // initial rehash(64)
  const std::uint64_t after_first = map.generation();
  EXPECT_GE(after_first, 1u);

  // Non-rehashing mutations keep every pointer valid: the generation must
  // hold still. Initial capacity 64 rehashes above 48 entries.
  std::uint64_t gen = map.generation();
  for (std::uint64_t k = 2; k <= 40; ++k) map[k] = k;
  map.set(1, 11);            // overwrite: no structural change
  (void)map.find(7);         // lookups never mutate
  EXPECT_EQ(map.generation(), gen);

  // Growth past 3/4 load rehashes and bumps the generation.
  for (std::uint64_t k = 41; k <= 60; ++k) map[k] = k;
  EXPECT_GT(map.generation(), gen);

  // A successful erase bumps it (survivors may backward-shift)...
  gen = map.generation();
  EXPECT_TRUE(map.erase(17));
  EXPECT_EQ(map.generation(), gen + 1);
  // ...a failed erase does not (nothing moved).
  EXPECT_FALSE(map.erase(17));
  EXPECT_EQ(map.generation(), gen + 1);
}

// The documented safe pattern in hot_cache.cpp: a value reference from
// operator[] stays valid across finds and erases on OTHER containers, and
// the generation check proves it for any given interleaving.
TEST(FlatMap64, HeldReferenceSurvivesNonMutatingProbes) {
  util::FlatMap64 map;
  for (std::uint64_t k = 0; k < 30; ++k) map[k] = k;
  std::uint64_t& slot = map[5];
  const std::uint64_t gen = map.generation();
  (void)map.find(11);
  (void)map.contains(29);
  ASSERT_EQ(map.generation(), gen);  // still safe to dereference
  slot = 123;
  EXPECT_EQ(*map.find(5), 123u);
}

TEST(FlatSet64, InsertEraseContains) {
  util::FlatSet64 set;
  EXPECT_TRUE(set.empty());
  set.insert(42);
  set.insert(42);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.contains(42));
  EXPECT_FALSE(set.contains(7));
  EXPECT_TRUE(set.erase(42));
  EXPECT_FALSE(set.erase(42));
  EXPECT_TRUE(set.empty());
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(util::pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg(ys);
  for (auto& y : neg) y = -y;
  EXPECT_NEAR(util::pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, SpearmanRobustToMonotoneTransform) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(std::exp(x));  // monotone, nonlinear
  EXPECT_NEAR(util::spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, AucPerfectAndRandom) {
  const std::vector<int> labels = {0, 0, 1, 1};
  const std::vector<double> good = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(util::auc(labels, good), 1.0);
  const std::vector<double> inverted = {0.9, 0.8, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(util::auc(labels, inverted), 0.0);
}

TEST(Stats, AucDegenerateLabelsGiveHalf) {
  const std::vector<int> labels = {1, 1};
  const std::vector<double> scores = {0.1, 0.9};
  EXPECT_DOUBLE_EQ(util::auc(labels, scores), 0.5);
}

// ---------- Table -----------------------------------------------------------

TEST(Table, RendersHeaderAndRows) {
  util::Table t("Demo");
  t.header({"A", "B"}).row({"1", "22"}).separator().row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("| A "), std::string::npos);
  EXPECT_NE(s.find("| 333 |"), std::string::npos);
}

TEST(Table, RowBeforeHeaderThrows) {
  util::Table t("x");
  EXPECT_THROW(t.row({"1"}), Error);
}

TEST(Table, NumTrimsTrailingZeros) {
  EXPECT_EQ(util::Table::num(1.5, 3), "1.5");
  EXPECT_EQ(util::Table::num(2.0, 2), "2");
  EXPECT_EQ(util::Table::num(0.125, 2), "0.12");  // round-half-to-even
}

TEST(Table, FactorUsesScientificForHuge) {
  EXPECT_EQ(util::Table::factor(16.8), "16.8x");
  const std::string f = util::Table::factor(38000.0);
  EXPECT_NE(f.find("e+"), std::string::npos);
}

}  // namespace
}  // namespace imars
