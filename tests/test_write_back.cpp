// Write-back cache model tests: dirty-row bookkeeping and flush accounting
// in HotEmbeddingCache, the LoadGenerator update mix, and the runtime-level
// edge cases the ISSUE pins down — dirty-row eviction while a batch is in
// flight (overlap on/off must stay bit-identical), a flushed row
// re-admitted on the very next access (must come back clean), and a
// zero-capacity cache with updates enabled (pure write-through, no crash).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baseline/cpu_backend.hpp"
#include "core/backend_factory.hpp"
#include "data/movielens.hpp"
#include "recsys/youtube_dnn.hpp"
#include "serve/hot_cache.hpp"
#include "serve/load_gen.hpp"
#include "serve/runtime.hpp"
#include "serve_test_util.hpp"
#include "util/rng.hpp"

namespace imars {
namespace {

using device::Ns;
using serve::ArrivalProcess;
using serve::HotCacheConfig;
using serve::HotEmbeddingCache;
using serve::LoadGenConfig;
using serve::LoadGenerator;
using serve::ServingConfig;
using serve::ServingRuntime;

// --- HotEmbeddingCache write-back unit tests -------------------------------

TEST(WriteBackCache, ZeroCapacityDegradesToWriteThrough) {
  HotEmbeddingCache cache(HotCacheConfig{0});
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(cache.update(0, 7));
  EXPECT_EQ(cache.stats().update_hits, 0u);
  EXPECT_EQ(cache.stats().update_misses, 8u);
  EXPECT_EQ(cache.stats().flushes, 0u);
  EXPECT_EQ(cache.dirty_rows(), 0u);
  EXPECT_DOUBLE_EQ(cache.stats().write_hit_rate(), 0.0);
}

TEST(WriteBackCache, ResidentRowAbsorbsUpdateAndGoesDirty) {
  HotEmbeddingCache cache(HotCacheConfig{4});
  EXPECT_FALSE(cache.access(0, 1));  // cold miss, admitted
  EXPECT_FALSE(cache.dirty(0, 1));
  EXPECT_TRUE(cache.update(0, 1));  // buffer absorbs the write
  EXPECT_TRUE(cache.dirty(0, 1));
  EXPECT_EQ(cache.stats().update_hits, 1u);
  EXPECT_EQ(cache.dirty_rows(), 1u);
  // A read of the dirty row still hits (the buffer holds the fresh copy).
  EXPECT_TRUE(cache.access(0, 1));
}

TEST(WriteBackCache, UpdateNeverAllocates) {
  HotEmbeddingCache cache(HotCacheConfig{4});
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(cache.update(0, 9));
  EXPECT_FALSE(cache.contains(0, 9));
  EXPECT_EQ(cache.stats().update_misses, 20u);
  EXPECT_EQ(cache.resident_rows(), 0u);
  // The update frequency still counts toward LFU admission: the very first
  // read admits the (now hot) row.
  EXPECT_FALSE(cache.access(0, 9));
  EXPECT_TRUE(cache.contains(0, 9));
  EXPECT_FALSE(cache.dirty(0, 9));  // admitted clean
}

TEST(WriteBackCache, UpdateFloodCannotEvictReadHotSet) {
  HotEmbeddingCache cache(HotCacheConfig{2});
  for (int i = 0; i < 5; ++i) {
    cache.access(0, 0);
    cache.access(0, 1);
  }
  // A write flood over cold rows is pure write-through: the hot set stays.
  for (std::uint32_t r = 100; r < 300; ++r) EXPECT_FALSE(cache.update(0, r));
  EXPECT_TRUE(cache.access(0, 0));
  EXPECT_TRUE(cache.access(0, 1));
  EXPECT_EQ(cache.stats().flushes, 0u);
}

TEST(WriteBackCache, DirtyEvictionFlushesExactlyOnce) {
  HotEmbeddingCache cache(HotCacheConfig{1});
  cache.access(0, 1);          // resident, freq 1
  cache.update(0, 1);          // dirty, freq 2
  EXPECT_EQ(cache.take_flushed(), 0u);
  // Make row 2 strictly hotter so admission evicts the dirty row 1.
  cache.access(0, 2);  // miss, freq 1 — not hotter yet, no eviction
  EXPECT_TRUE(cache.contains(0, 1));
  cache.access(0, 2);  // freq 2 — still not STRICTLY hotter
  EXPECT_TRUE(cache.contains(0, 1));
  cache.access(0, 2);  // freq 3 > 2: evicts dirty row 1 -> flush
  EXPECT_TRUE(cache.contains(0, 2));
  EXPECT_FALSE(cache.contains(0, 1));
  EXPECT_EQ(cache.stats().flushes, 1u);
  EXPECT_EQ(cache.take_flushed(), 1u);
  EXPECT_EQ(cache.take_flushed(), 0u);  // drained
  EXPECT_EQ(cache.dirty_rows(), 0u);
}

TEST(WriteBackCache, FlushedRowReadmittedSameTickComesBackClean) {
  HotEmbeddingCache cache(HotCacheConfig{1});
  cache.access(0, 1);
  cache.update(0, 1);
  cache.update(0, 1);  // freq(1) = 3, dirty
  // Heat row 2 past row 1 and admit it: row 1 flushes out dirty.
  for (int i = 0; i < 4; ++i) cache.access(0, 2);
  EXPECT_FALSE(cache.contains(0, 1));
  EXPECT_EQ(cache.stats().flushes, 1u);
  // Row 1 comes straight back (freq 4 > freq(2) = 4? needs strictly hotter:
  // one more access makes it 4 vs 4 -> no, then 5 > 4 -> yes).
  cache.access(0, 1);  // freq 4, not strictly hotter than 4
  EXPECT_FALSE(cache.contains(0, 1));
  cache.access(0, 1);  // freq 5 > 4: re-admitted the same tick it misses
  EXPECT_TRUE(cache.contains(0, 1));
  // The deferred write already happened at eviction; the re-admitted copy
  // must be clean — no double flush when it is evicted again later.
  EXPECT_FALSE(cache.dirty(0, 1));
  EXPECT_EQ(cache.take_flushed(), 1u);  // only the original eviction
  for (int i = 0; i < 7; ++i) cache.access(0, 3);  // evict clean row 1
  EXPECT_FALSE(cache.contains(0, 1));
  EXPECT_EQ(cache.stats().flushes, 1u);  // still exactly one
}

// --- LoadGenerator update mix ----------------------------------------------

TEST(LoadGenerator, UpdateMixLabelsWithoutShiftingUserDraws) {
  auto users_of = [](double fraction) {
    LoadGenConfig lg;
    lg.clients = 4;
    lg.total_queries = 64;
    lg.num_users = 50;
    lg.seed = 33;
    lg.update_fraction = fraction;
    LoadGenerator gen(lg);
    std::vector<std::size_t> users;
    std::size_t updates = 0, i = 0;
    while (auto r = gen.next(i++ % lg.clients, Ns{0.0})) {
      users.push_back(r->user);
      if (r->is_update) ++updates;
    }
    return std::pair(users, updates);
  };
  const auto [read_users, zero_updates] = users_of(0.0);
  const auto [mix_users, some_updates] = users_of(0.3);
  EXPECT_EQ(zero_updates, 0u);
  EXPECT_GT(some_updates, 8u);   // ~19 expected of 64
  EXPECT_LT(some_updates, 40u);
  // The update stream has its own RNG: user draws are identical.
  EXPECT_EQ(read_users, mix_users);
}

TEST(LoadGenerator, UpdateFractionValidated) {
  LoadGenConfig lg;
  lg.update_fraction = 1.5;
  EXPECT_THROW(LoadGenerator gen(lg), imars::Error);
}

// --- Runtime-level write-back edge cases -----------------------------------

struct WriteBackFixture {
  WriteBackFixture() {
    data::MovieLensConfig dcfg;
    dcfg.num_users = 60;
    dcfg.num_items = 90;
    dcfg.history_min = 3;
    dcfg.history_max = 8;
    dcfg.seed = 241;
    ds = std::make_unique<data::MovieLensSynth>(dcfg);

    recsys::YoutubeDnnConfig mcfg;
    mcfg.seed = 243;
    model = std::make_unique<recsys::YoutubeDnn>(ds->schema(), mcfg);
    util::Xoshiro256 rng(247);
    model->train_filter_epoch(*ds, rng);
    model->train_rank_epoch(*ds, rng);

    for (std::size_t u = 0; u < ds->num_users(); ++u)
      users.push_back(model->make_context(*ds, u));

    cpu_cfg.candidates = 40;
    factory = core::cpu_backend_factory(*model, cpu_cfg);
  }

  serve::ServeReport run(std::size_t cache_rows, double update_fraction,
                         bool open, bool overlap) {
    ServingConfig cfg;
    cfg.shards = 3;
    cfg.k = 5;
    cfg.batcher.max_batch = 4;
    cfg.batcher.max_wait = Ns{300000.0};
    cfg.cache.capacity_rows = cache_rows;
    cfg.overlap = overlap;
    cfg.max_inflight = 3;
    ServingRuntime rt(factory, cfg, core::ArchConfig{},
                      device::DeviceProfile::fefet45());
    LoadGenConfig lg;
    lg.clients = 8;
    lg.total_queries = 60;
    lg.num_users = users.size();
    lg.user_zipf_s = 1.1;
    lg.seed = 271;
    lg.update_fraction = update_fraction;
    if (open) {
      lg.arrivals = ArrivalProcess::kOpenPoisson;
      lg.rate_qps = 2.0e5;
    }
    LoadGenerator gen(lg);
    return rt.run(gen, users);
  }

  std::unique_ptr<data::MovieLensSynth> ds;
  std::unique_ptr<recsys::YoutubeDnn> model;
  std::vector<recsys::UserContext> users;
  baseline::CpuBackendConfig cpu_cfg;
  core::BackendFactory factory;
};

TEST(WriteBackRuntime, ZeroCapacityCacheWithUpdatesIsPureWriteThrough) {
  WriteBackFixture fx;
  const auto report = fx.run(/*cache_rows=*/0, /*update_fraction=*/0.25,
                             /*open=*/false, /*overlap=*/false);
  // Queries + updates cover the whole stream; nothing crashed.
  EXPECT_GT(report.updates, 0u);
  EXPECT_EQ(report.size() + report.updates, 60u);
  // Without a buffer every update is a write-through row write with real
  // hardware cost, and nothing can flush.
  EXPECT_GT(report.update_cost.latency.value, 0.0);
  EXPECT_GT(report.update_cost.energy.value, 0.0);
  EXPECT_EQ(report.cache.update_hits, 0u);
  EXPECT_GT(report.cache.update_misses, 0u);
  EXPECT_EQ(report.cache.flushes, 0u);
  EXPECT_EQ(report.flush_bytes, 0u);
  double write_busy = 0.0;
  for (const auto& s : report.shards) write_busy += s.write_busy.value;
  EXPECT_GT(write_busy, 0.0);
}

TEST(WriteBackRuntime, DirtyEvictionDuringInflightBatchStaysDeterministic) {
  WriteBackFixture fx;
  // A small cache under Zipf read traffic + a 25% update mix: admissions
  // keep evicting rows that updates dirtied, including while overlapped
  // batches are in flight. The timestamp-ordered update application must
  // keep overlap on/off bit-identical.
  for (const bool open : {false, true}) {
    const auto phased = fx.run(48, 0.25, open, /*overlap=*/false);
    const auto phased_again = fx.run(48, 0.25, open, /*overlap=*/false);
    const auto overlapped = fx.run(48, 0.25, open, /*overlap=*/true);
    serve_test::expect_reports_identical(phased, phased_again);
    serve_test::expect_reports_identical(phased, overlapped);
    EXPECT_EQ(phased.updates, overlapped.updates);
    EXPECT_EQ(phased.cache.flushes, overlapped.cache.flushes);
    EXPECT_EQ(phased.flush_bytes, overlapped.flush_bytes);
    EXPECT_DOUBLE_EQ(phased.update_cost.latency.value,
                     overlapped.update_cost.latency.value);
    // The edge case actually fired: dirty rows were evicted mid-run.
    EXPECT_GT(phased.cache.flushes, 0u) << "open=" << open;
    EXPECT_GT(phased.cache.update_hits, 0u);
  }
}

TEST(WriteBackRuntime, ReadOnlyStreamHasNoWriteTraffic) {
  WriteBackFixture fx;
  const auto report = fx.run(512, 0.0, /*open=*/false, /*overlap=*/false);
  EXPECT_EQ(report.updates, 0u);
  EXPECT_EQ(report.cache.updates(), 0u);
  EXPECT_EQ(report.cache.flushes, 0u);
  EXPECT_EQ(report.flush_bytes, 0u);
  EXPECT_DOUBLE_EQ(report.update_cost.latency.value, 0.0);
  for (const auto& s : report.shards)
    EXPECT_DOUBLE_EQ(s.write_busy.value, 0.0);
}

TEST(WriteBackRuntime, UpdatesLeaveResultsUnchanged) {
  WriteBackFixture fx;
  // The write-back model charges time and energy but never mutates what a
  // query computes: the query subsequence of a mixed stream returns the
  // same top-k as the same users queried read-only.
  const auto mixed = fx.run(128, 0.25, /*open=*/false, /*overlap=*/false);
  for (const auto& q : mixed.queries) {
    ASSERT_FALSE(q.topk.empty());
  }
  EXPECT_GT(mixed.updates, 0u);
  EXPECT_GT(mixed.cache.update_hits + mixed.cache.update_misses, 0u);
}

}  // namespace
}  // namespace imars
