// Tests for the crossbar module: tile gemv vs integer oracle, tiling of
// larger matrices, XbarMlp quantized inference vs float reference.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/xbar_mlp.hpp"

namespace imars {
namespace {

using device::Component;
using device::DeviceProfile;
using device::EnergyLedger;
using tensor::Matrix;
using tensor::QMatrix;
using tensor::Vector;

struct Fixture {
  DeviceProfile profile = DeviceProfile::fefet45();
  EnergyLedger ledger;
};

TEST(Crossbar, TileGeometry) {
  Fixture f;
  xbar::Crossbar xb(f.profile, &f.ledger);
  EXPECT_EQ(xb.rows(), 256u);
  EXPECT_EQ(xb.cols(), 128u);
}

TEST(Crossbar, GemvMatchesIntegerOracle) {
  Fixture f;
  xbar::Crossbar xb(f.profile, &f.ledger);
  util::Xoshiro256 rng(1);
  const Matrix w = Matrix::randn(64, 100, 1.0f, rng);  // fits in one tile
  const QMatrix wq = QMatrix::quantize(w);
  // Tile orientation: (input rows x output cols) = transpose of wq.
  QMatrix tile(100, 64, wq.params());
  for (std::size_t r = 0; r < 64; ++r)
    for (std::size_t c = 0; c < 100; ++c) tile.at(c, r) = wq.at(r, c);
  xb.load_weights(tile);

  std::vector<std::int8_t> in(256, 0);
  for (std::size_t i = 0; i < 100; ++i)
    in[i] = static_cast<std::int8_t>(static_cast<int>(rng.below(200)) - 100);

  device::Ns lat{0.0};
  const auto out = xb.gemv(in, &lat);
  EXPECT_DOUBLE_EQ(lat.value, 225.0);

  for (std::size_t o = 0; o < 64; ++o) {
    std::int32_t acc = 0;
    for (std::size_t i = 0; i < 100; ++i)
      acc += static_cast<std::int32_t>(wq.at(o, i)) * in[i];
    EXPECT_EQ(out[o], acc) << "output " << o;
  }
}

TEST(Crossbar, LoadRejectsOversizedBlock) {
  Fixture f;
  xbar::Crossbar xb(f.profile, &f.ledger);
  EXPECT_THROW(xb.load_weights(QMatrix(300, 10, {})), Error);
  EXPECT_THROW(xb.load_weights(QMatrix(10, 200, {})), Error);
}

TEST(Crossbar, GemvChargesOneMatmul) {
  Fixture f;
  xbar::Crossbar xb(f.profile, &f.ledger);
  const auto before = f.ledger.ops(Component::kCrossbar);
  (void)xb.gemv(std::vector<std::int8_t>(256, 0), nullptr);
  EXPECT_EQ(f.ledger.ops(Component::kCrossbar), before + 1);
}

// ---------- TiledMatVec -------------------------------------------------------

class TiledShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(TiledShapes, MatchesIntegerGemvOracle) {
  const auto [out_dim, in_dim] = GetParam();
  Fixture f;
  util::Xoshiro256 rng(7);
  const Matrix w = Matrix::randn(out_dim, in_dim, 1.0f, rng);
  const QMatrix wq = QMatrix::quantize(w);
  xbar::TiledMatVec tiled(f.profile, &f.ledger, wq);

  const std::size_t expected_tiles =
      ((in_dim + 255) / 256) * ((out_dim + 127) / 128);
  EXPECT_EQ(tiled.tile_count(), expected_tiles);

  std::vector<std::int8_t> in(in_dim);
  for (auto& v : in)
    v = static_cast<std::int8_t>(static_cast<int>(rng.below(200)) - 100);

  device::Ns lat{0.0};
  const auto out = tiled.gemv(in, &lat);
  const auto oracle = tensor::gemv_i8(wq, in);
  EXPECT_EQ(out, oracle);
  // Tiles run in parallel: latency is one matmul + log2 merge of row tiles.
  EXPECT_GE(lat.value, 225.0);
  EXPECT_LT(lat.value, 225.0 + 10.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{16, 16},
                      std::pair<std::size_t, std::size_t>{128, 256},
                      std::pair<std::size_t, std::size_t>{130, 260},
                      std::pair<std::size_t, std::size_t>{1, 300},
                      std::pair<std::size_t, std::size_t>{383, 100},
                      std::pair<std::size_t, std::size_t>{64, 700}));

TEST(TiledMatVec, InputSizeChecked) {
  Fixture f;
  xbar::TiledMatVec tiled(f.profile, &f.ledger,
                          QMatrix(10, 20, util::QuantParams{0.1f}));
  EXPECT_THROW((void)tiled.gemv(std::vector<std::int8_t>(19, 0), nullptr),
               Error);
}

// ---------- XbarMlp -----------------------------------------------------------

TEST(XbarMlp, TracksFloatMlpWithinQuantizationError) {
  Fixture f;
  util::Xoshiro256 rng(11);
  nn::Mlp mlp({24, 32, 16, 8}, nn::Activation::kIdentity, rng);

  std::vector<Vector> calib;
  for (int i = 0; i < 16; ++i) {
    Vector v(24);
    for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    calib.push_back(v);
  }
  xbar::XbarMlp qmlp(f.profile, &f.ledger, mlp, calib);
  EXPECT_EQ(qmlp.in_dim(), 24u);
  EXPECT_EQ(qmlp.out_dim(), 8u);
  EXPECT_EQ(qmlp.layer_count(), 3u);

  // Compare on fresh inputs from the calibration distribution.
  double err = 0.0, mag = 0.0;
  for (int t = 0; t < 20; ++t) {
    Vector v(24);
    for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    const Vector ref = mlp.infer(v);
    const Vector got = qmlp.infer(v, nullptr);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      err += std::fabs(ref[i] - got[i]);
      mag += std::fabs(ref[i]);
    }
  }
  // Relative L1 error of int8 inference stays below ~10%.
  EXPECT_LT(err / mag, 0.10);
}

TEST(XbarMlp, SigmoidOutputStaysInUnitInterval) {
  Fixture f;
  util::Xoshiro256 rng(12);
  nn::Mlp mlp({10, 16, 1}, nn::Activation::kSigmoid, rng);
  std::vector<Vector> calib(4, Vector(10, 0.5f));
  xbar::XbarMlp qmlp(f.profile, &f.ledger, mlp, calib);
  for (int t = 0; t < 10; ++t) {
    Vector v(10);
    for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
    const float y = qmlp.infer(v, nullptr)[0];
    EXPECT_GE(y, 0.0f);
    EXPECT_LE(y, 1.0f);
  }
}

TEST(XbarMlp, LatencyIncludesPerLayerOverhead) {
  Fixture f;
  util::Xoshiro256 rng(13);
  nn::Mlp mlp({8, 8, 8}, nn::Activation::kIdentity, rng);
  std::vector<Vector> calib(2, Vector(8, 0.25f));
  xbar::XbarMlp qmlp(f.profile, &f.ledger, mlp, calib);
  device::Ns lat{0.0};
  (void)qmlp.infer(Vector(8, 0.1f), &lat);
  const double expected_min =
      2 * (f.profile.xbar_matmul.latency.value +
           f.profile.xbar_layer_overhead.value);
  EXPECT_GE(lat.value, expected_min - 1e-9);
}

TEST(XbarMlp, RequiresCalibration) {
  Fixture f;
  util::Xoshiro256 rng(14);
  nn::Mlp mlp({4, 4}, nn::Activation::kIdentity, rng);
  EXPECT_THROW(xbar::XbarMlp(f.profile, &f.ledger, mlp, {}), Error);
}

TEST(XbarMlp, TileCountMatchesAnalyticFormula) {
  Fixture f;
  util::Xoshiro256 rng(15);
  // Layer (196 -> 128): 1 row tile x 1 col tile; (128 -> 64): 1x1;
  // (64 -> 32): 1x1. Then a wide layer (383 -> 256): 2x2 = 4.
  nn::Mlp mlp({383, 256, 64}, nn::Activation::kIdentity, rng);
  std::vector<Vector> calib(2, Vector(383, 0.1f));
  xbar::XbarMlp qmlp(f.profile, &f.ledger, mlp, calib);
  EXPECT_EQ(qmlp.tile_count(), 2u * 2u + 1u * 1u);
}

}  // namespace
}  // namespace imars
