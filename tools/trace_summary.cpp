// trace_summary: load a Chrome trace-event JSON file produced by the
// serving observers (serve::TraceLog), validate its well-formedness and
// print the top spans.
//
//   trace_summary [--check] [--top N] [--host] [--tiers] <trace.json>
//
// Default: print the event/span counts, the close-trigger breakdown, the
// validation verdict and the top-N (cat, name) span totals. With --check
// the exit code reflects the verdict (0 well-formed, 1 malformed) — CI
// runs every uploaded trace through this gate, because a malformed trace
// (overlapping unit spans, unpaired async events, trigger counts that do
// not sum to the batch total) means the simulator's clock walk or the
// observer plumbing is broken, not just the artifact.
//
// --host switches the span table to the wall-clock self-profiling spans
// (cat "host", pid 99 — present when the bench ran with --self-profile or
// --trace): top host spans by total time plus the host-path wall-clock
// total, with the worker-completion wait (host.wait) broken out the same
// way ServeReport::host_total_us excludes it.
//
// --tiers switches to the tiered-embedding-memory view: totals of the
// "migrate" commit instants (blocks promoted to warm / demoted to cold)
// and the tier split of write-back flush rows, so a run's migration
// traffic is auditable from its trace alone.
//
// The parser below is a minimal recursive-descent JSON reader — the repo
// deliberately has no third-party JSON dependency.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "serve/trace.hpp"

namespace {

// --- minimal JSON ----------------------------------------------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  const JsonValue* find(std::string_view key) const {
    if (const auto* obj = std::get_if<JsonObject>(&v))
      for (const auto& [k, val] : *obj)
        if (k == key) return &val;
    return nullptr;
  }
  double num(double fallback = 0.0) const {
    if (const auto* d = std::get_if<double>(&v)) return *d;
    return fallback;
  }
  std::string str() const {
    if (const auto* s = std::get_if<std::string>(&v)) return *s;
    return {};
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    require(pos_ == s_.size(), "trailing data after the top-level value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + msg);
  }
  void require(bool ok, const char* msg) const {
    if (!ok) fail(msg);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    require(pos_ < s_.size(), "unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    require(pos_ < s_.size() && s_[pos_] == c, "unexpected character");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't': return literal("true", JsonValue{true});
      case 'f': return literal("false", JsonValue{false});
      case 'n': return literal("null", JsonValue{nullptr});
      default: return JsonValue{number()};
    }
  }

  JsonValue literal(std::string_view word, JsonValue v) {
    require(s_.substr(pos_, word.size()) == word, "bad literal");
    pos_ += word.size();
    return v;
  }

  double number() {
    const char* begin = s_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    require(end != begin, "expected a number");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < s_.size(), "unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      require(pos_ < s_.size(), "unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          require(pos_ + 4 <= s_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // The traces only ever escape control characters; encode the
          // code point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue array() {
    expect('[');
    JsonArray out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(out)};
    }
    while (true) {
      out.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(out)};
    }
  }

  JsonValue object() {
    expect('{');
    JsonObject out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(out)};
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(out)};
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// --- trace-event mapping ----------------------------------------------------

bool phase_of(const std::string& ph, imars::serve::TraceEvent::Phase& out) {
  using Phase = imars::serve::TraceEvent::Phase;
  if (ph.size() != 1) return false;
  switch (ph[0]) {
    case 'X': out = Phase::kComplete; return true;
    case 'b': out = Phase::kAsyncBegin; return true;
    case 'e': out = Phase::kAsyncEnd; return true;
    case 'C': out = Phase::kCounter; return true;
    case 'i': out = Phase::kInstant; return true;
    case 'M': out = Phase::kMeta; return true;
    default: return false;  // foreign phases pass through unchecked
  }
}

std::vector<imars::serve::TraceEvent> to_events(const JsonValue& root) {
  const JsonValue* list = root.find("traceEvents");
  if (list == nullptr && std::holds_alternative<JsonArray>(root.v))
    list = &root;  // the bare-array flavor of the format
  if (list == nullptr || !std::holds_alternative<JsonArray>(list->v))
    throw std::runtime_error("no traceEvents array in the file");

  std::vector<imars::serve::TraceEvent> events;
  for (const JsonValue& item : std::get<JsonArray>(list->v)) {
    if (!std::holds_alternative<JsonObject>(item.v))
      throw std::runtime_error("traceEvents entry is not an object");
    imars::serve::TraceEvent ev;
    const JsonValue* ph = item.find("ph");
    if (ph == nullptr || !phase_of(ph->str(), ev.phase)) continue;
    if (const auto* f = item.find("name")) ev.name = f->str();
    if (const auto* f = item.find("cat")) ev.cat = f->str();
    if (const auto* f = item.find("ts")) ev.ts_us = f->num();
    if (const auto* f = item.find("dur")) ev.dur_us = f->num();
    if (const auto* f = item.find("pid")) ev.pid = static_cast<int>(f->num());
    if (const auto* f = item.find("tid")) ev.tid = static_cast<int>(f->num());
    if (const auto* f = item.find("id"))
      ev.id = static_cast<std::uint64_t>(f->num());
    if (const auto* args = item.find("args"))
      if (const auto* obj = std::get_if<JsonObject>(&args->v))
        for (const auto& [k, v] : *obj) {
          if (const auto* d = std::get_if<double>(&v.v))
            ev.num_args.emplace_back(k, *d);
          else if (const auto* s = std::get_if<std::string>(&v.v))
            ev.str_args.emplace_back(k, *s);
        }
    events.push_back(std::move(ev));
  }
  return events;
}

int usage() {
  std::fprintf(stderr,
               "usage: trace_summary [--check] [--top N] [--host] [--tiers] "
               "<trace.json>\n"
               "  --check   exit nonzero when the trace is malformed\n"
               "  --top N   show the N largest span groups (default 15)\n"
               "  --host    summarize the wall-clock host-profile spans\n"
               "  --tiers   summarize tiered-memory migration traffic\n");
  return 2;
}

// The --tiers view: aggregate the tiered-embedding-memory instants
// ("migrate" on the runtime track, tier-tagged "flush" on the shard
// tracks) so a run's migration traffic is auditable from its trace alone.
void print_tiers_view(const std::vector<imars::serve::TraceEvent>& events) {
  using Phase = imars::serve::TraceEvent::Phase;
  std::size_t migrate_commits = 0, flush_events = 0;
  double to_warm = 0.0, to_cold = 0.0;
  double flush_rows = 0.0, flush_warm = 0.0, flush_cold = 0.0;
  const auto num_arg = [](const imars::serve::TraceEvent& ev,
                          std::string_view key) {
    for (const auto& [k, v] : ev.num_args)
      if (k == key) return v;
    return 0.0;
  };
  for (const auto& ev : events) {
    if (ev.phase != Phase::kInstant || ev.cat != "cache") continue;
    if (ev.name == "migrate") {
      ++migrate_commits;
      to_warm += num_arg(ev, "to_warm");
      to_cold += num_arg(ev, "to_cold");
    } else if (ev.name == "flush") {
      ++flush_events;
      flush_rows += num_arg(ev, "rows");
      flush_warm += num_arg(ev, "rows_warm");
      flush_cold += num_arg(ev, "rows_cold");
    }
  }
  if (migrate_commits == 0 && flush_warm + flush_cold == 0.0) {
    std::printf(
        "no tier traffic (run with tiering enabled and --trace to capture "
        "migration instants)\n");
    return;
  }
  std::printf("tiered-memory migration traffic:\n");
  std::printf("  %-28s %14s\n", "metric", "total");
  std::printf("  %-28s %14zu\n", "migrate commits", migrate_commits);
  std::printf("  %-28s %14.0f\n", "blocks cold -> warm", to_warm);
  std::printf("  %-28s %14.0f\n", "blocks warm -> cold", to_cold);
  std::printf("  %-28s %14zu\n", "flush events", flush_events);
  std::printf("  %-28s %14.0f\n", "flush rows (total)", flush_rows);
  std::printf("  %-28s %14.0f\n", "flush rows -> warm", flush_warm);
  std::printf("  %-28s %14.0f\n", "flush rows -> cold", flush_cold);
  if (flush_rows > flush_warm + flush_cold)
    std::printf("  %-28s %14.0f\n", "flush rows (untiered)",
                flush_rows - flush_warm - flush_cold);
}

// The --host view: aggregate the wall-clock self-profiling spans and print
// the top groups plus the host-path total (host.wait — time blocked on
// worker completion — shown but excluded from the total, mirroring
// ServeReport::host_total_us).
void print_host_view(const std::vector<imars::serve::TraceEvent>& events,
                     std::size_t top_n) {
  struct Group {
    std::size_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, Group> groups;
  for (const auto& ev : events) {
    if (ev.phase != imars::serve::TraceEvent::Phase::kComplete ||
        ev.cat != "host")
      continue;
    Group& g = groups[ev.name];
    ++g.count;
    g.total_us += ev.dur_us;
    g.max_us = std::max(g.max_us, ev.dur_us);
  }
  if (groups.empty()) {
    std::printf(
        "no host-profile spans (rerun the bench with --self-profile or "
        "--trace to capture them)\n");
    return;
  }
  std::vector<std::pair<std::string, Group>> sorted(groups.begin(),
                                                    groups.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });

  double host_path_us = 0.0, wait_us = 0.0;
  for (const auto& [name, g] : sorted)
    (name == "host.wait" ? wait_us : host_path_us) += g.total_us;

  std::printf("top host spans by wall-clock total:\n");
  std::printf("  %-24s %8s %14s %12s\n", "span", "count", "total_us",
              "max_us");
  for (std::size_t i = 0; i < std::min(top_n, sorted.size()); ++i) {
    const auto& [name, g] = sorted[i];
    std::printf("  %-24s %8zu %14.3f %12.3f\n", name.c_str(), g.count,
                g.total_us, g.max_us);
  }
  std::printf("host path total: %.3f us (+ %.3f us host.wait, excluded)\n",
              host_path_us, wait_us);
}

}  // namespace

int main(int argc, char** argv) {
  bool check_gate = false;
  bool host_view = false;
  bool tiers_view = false;
  std::size_t top_n = 15;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--check") {
      check_gate = true;
    } else if (arg == "--host") {
      host_view = true;
    } else if (arg == "--tiers") {
      tiers_view = true;
    } else if (arg == "--top" && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else if (path.empty()) {
      path = std::string(arg);
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  std::string text;
  {
    std::ifstream f(path, std::ios::binary);
    if (!f.good()) {
      std::fprintf(stderr, "trace_summary: cannot open '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    text = ss.str();
  }

  std::vector<imars::serve::TraceEvent> events;
  try {
    events = to_events(JsonParser(text).parse());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_summary: %s: %s\n", path.c_str(), e.what());
    return 2;
  }

  const imars::serve::TraceCheck check = imars::serve::check_trace(events);
  std::printf("%s: %zu events, %zu unit spans, %zu batch spans",
              path.c_str(), check.events, check.unit_spans, check.batch_spans);
  if (check.merge_spans > 0)
    std::printf(", %zu merge spans", check.merge_spans);
  std::printf("\n");
  if (!check.trigger_counts.empty()) {
    std::printf("close triggers:");
    for (const auto& [trigger, n] : check.trigger_counts)
      std::printf(" %s=%zu", trigger.c_str(), n);
    std::printf("\n");
  }

  if (tiers_view) {
    print_tiers_view(events);
  } else if (host_view) {
    print_host_view(events, top_n);
  } else if (const auto totals = imars::serve::summarize_trace(events, top_n);
             !totals.empty()) {
    std::printf("top spans by total time:\n");
    std::printf("  %-10s %-24s %8s %14s %12s\n", "cat", "name", "count",
                "total_us", "max_us");
    for (const auto& t : totals)
      std::printf("  %-10s %-24s %8zu %14.3f %12.3f\n", t.cat.c_str(),
                  t.name.c_str(), t.count, t.total_us, t.max_us);
  }

  if (check.ok) {
    std::printf("check: OK\n");
    return 0;
  }
  std::printf("check: %zu problem(s)\n", check.problems.size());
  for (const auto& p : check.problems) std::printf("  - %s\n", p.c_str());
  return check_gate ? 1 : 0;
}
